"""MVCC storage micro-benchmark: vacuum keeps hot-path reads flat.

Two measurements, both on the functional engine (no simulation):

* **Sustained group-apply** — a replica applies certified writesets the way
  the transport delivers them (``apply_writeset_batch``): hot-row updates
  grow version chains, insert/delete churn grows the row directory.  With
  the maintenance janitor running (horizon-clamped incremental vacuum after
  every batch) chains stay at their live suffix and dead rows leave the
  directory; without it both grow with history, and snapshot scans pay for
  every dead version.  The emitted rows record the deterministic structure
  metrics (max chain length, retained rows — functions of the axes alone)
  and the wall-clock scan throughputs, guarded by their on/off ratio.

* **Row-layout micro-benchmark** — raw installs into one long chain, the
  seed's list layout (``insert(0)`` + stamped head copies) against the O(1)
  linked chain, plus deep snapshot reads (a full-chain walk in both).

Results land in ``BENCH_mvcc_vacuum.json`` at the repo root (see
``tools/check_bench_regression.py``).  Axes are env-tunable — see
``benchmarks/conftest.py``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from conftest import MVCC_CHAIN_LENGTHS, MVCC_HISTORIES, MVCC_MEASURE_SECONDS

from repro.analysis.report import format_table
from repro.core.writeset import WriteSet
from repro.engine.database import Database
from repro.engine.rows import LegacyVersionedRow, RowVersion, VersionedRow
from repro.middleware.janitor import JanitorPolicy, MaintenanceJanitor

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_mvcc_vacuum.json"

#: Live working set (rows a scan returns), hot keys absorbing the update
#: stream, writesets per applied batch, and how many versions a churn row
#: lives before its delete arrives.  Fixed: they shape the deterministic
#: structure metrics, so they must not drift between CI and local runs.
LIVE_ROWS = 64
HOT_KEYS = 8
BATCH_WRITESETS = 64
CHURN_LIFETIME = 32
CHURN_BASE = 1_000_000

#: Acceptance (ISSUE 7): at the longest history point the maintained replica
#: must scan at least twice as fast as the unmaintained one, with its max
#: chain length bounded (independent of history).  Armed only when the axes
#: include the paper-scale point, so reduced smoke runs still pass.
ACCEPTANCE_HISTORY = 8_000
READ_SPEEDUP_FLOOR = 2.0
CHAIN_BOUND = 2


def _seeded_database(name: str) -> Database:
    db = Database(name, synchronous_commit=False)
    db.create_table("bench", ["id", "value"])
    seed = WriteSet()
    for key in range(LIVE_ROWS):
        seed.add_insert("bench", key, id=key, value=0)
    db.apply_writeset_batch([(1, seed)])
    return db


def _churn_writeset(version: int) -> WriteSet:
    """One certified commit: a hot-row update plus directory churn."""
    ws = WriteSet()
    ws.add_update("bench", version % HOT_KEYS, value=version)
    ws.add_insert("bench", CHURN_BASE + version, id=CHURN_BASE + version, value=version)
    expiring = version - CHURN_LIFETIME
    if expiring > 1:
        ws.add_delete("bench", CHURN_BASE + expiring)
    return ws


def _drive_replica(history: int, *, janitor_on: bool) -> tuple[Database, float]:
    """Apply ``history`` commits in transport-sized batches; time the loop."""
    db = _seeded_database("janitor-on" if janitor_on else "janitor-off")
    janitor = MaintenanceJanitor(
        [db],
        replication_horizon=lambda: db.current_version,
        policy=JanitorPolicy(vacuum_interval_ms=1.0, vacuum_batch_rows=4096,
                             run_certifier_gc=False),
    )
    version = db.current_version
    started = time.perf_counter()
    applied = 0
    while applied < history:
        batch = []
        for _ in range(min(BATCH_WRITESETS, history - applied)):
            version += 1
            applied += 1
            batch.append((version, _churn_writeset(version)))
        db.apply_writeset_batch(batch)
        if janitor_on:
            janitor.run_once()
    elapsed = time.perf_counter() - started
    return db, elapsed


def _scan_throughput(db: Database, seconds: float) -> tuple[float, int]:
    """Full snapshot scans per second at the current version."""
    table = db.table("bench")
    snapshot = db.current_version
    scans = 0
    rows = len(table.snapshot_state(snapshot))
    started = time.perf_counter()
    deadline = started + seconds
    now = started
    while now < deadline:
        table.snapshot_state(snapshot)
        scans += 1
        now = time.perf_counter()
    return scans / (now - started), rows


def _sustained_matrix() -> list[dict]:
    rows = []
    for history in MVCC_HISTORIES:
        on_db, on_apply_s = _drive_replica(history, janitor_on=True)
        off_db, off_apply_s = _drive_replica(history, janitor_on=False)
        # Equivalence check: maintenance must not change what the current
        # snapshot reads.
        state_on = on_db.table("bench").snapshot_state(on_db.current_version)
        state_off = off_db.table("bench").snapshot_state(off_db.current_version)
        assert state_on == state_off
        on_scans, live_rows = _scan_throughput(on_db, MVCC_MEASURE_SECONDS)
        off_scans, _ = _scan_throughput(off_db, MVCC_MEASURE_SECONDS)
        stats_on = on_db.mvcc_stats()
        stats_off = off_db.mvcc_stats()
        rows.append({
            "history": history,
            "live_rows": live_rows,
            "max_chain_on": stats_on.max_chain_length,
            "max_chain_off": stats_off.max_chain_length,
            "retained_rows_on": len(on_db.table("bench")._rows),
            "retained_rows_off": len(off_db.table("bench")._rows),
            "versions_reclaimed": stats_on.versions_reclaimed,
            "scan_per_s_on": round(on_scans, 1),
            "scan_per_s_off": round(off_scans, 1),
            "read_speedup": round(on_scans / off_scans, 1) if off_scans else 0.0,
            "apply_tps_on": round(history / on_apply_s, 1),
            "apply_tps_off": round(history / off_apply_s, 1),
        })
    return rows


def _build_chain(row, length: int) -> None:
    for version in range(1, length + 1):
        row.install(RowVersion(created_version=version, values={"value": version}))


def _install_throughput(factory, length: int, seconds: float) -> float:
    """Installs per second, building chains of ``length`` repeatedly."""
    installs = 0
    started = time.perf_counter()
    deadline = started + seconds
    now = started
    while now < deadline:
        _build_chain(factory(1), length)
        installs += length
        now = time.perf_counter()
    return installs / (now - started)


def _deep_read_throughput(row, seconds: float) -> float:
    """Deep snapshot reads per second (a full-chain walk: snapshot 1)."""
    reads = 0
    started = time.perf_counter()
    deadline = started + seconds
    now = started
    while now < deadline:
        row.version_for_snapshot(1)
        reads += 1
        now = time.perf_counter()
    return reads / (now - started)


def _layout_matrix() -> list[dict]:
    rows = []
    for length in MVCC_CHAIN_LENGTHS:
        linked_installs = _install_throughput(VersionedRow, length, MVCC_MEASURE_SECONDS)
        legacy_installs = _install_throughput(LegacyVersionedRow, length, MVCC_MEASURE_SECONDS)
        linked_row, legacy_row = VersionedRow(1), LegacyVersionedRow(1)
        _build_chain(linked_row, length)
        _build_chain(legacy_row, length)
        linked_reads = _deep_read_throughput(linked_row, MVCC_MEASURE_SECONDS / 2)
        legacy_reads = _deep_read_throughput(legacy_row, MVCC_MEASURE_SECONDS / 2)
        rows.append({
            "chain_length": length,
            "linked_installs_per_s": round(linked_installs, 1),
            "legacy_installs_per_s": round(legacy_installs, 1),
            "install_speedup": round(linked_installs / legacy_installs, 2)
            if legacy_installs else 0.0,
            "linked_deep_reads_per_s": round(linked_reads, 1),
            "legacy_deep_reads_per_s": round(legacy_reads, 1),
        })
    return rows


def test_mvcc_vacuum_and_emit_bench_json():
    sustained = _sustained_matrix()
    layout = _layout_matrix()

    payload = {
        "benchmark": "mvcc_vacuum",
        "python": platform.python_version(),
        "measure_seconds": MVCC_MEASURE_SECONDS,
        "live_rows": LIVE_ROWS,
        "hot_keys": HOT_KEYS,
        "batch_writesets": BATCH_WRITESETS,
        "sustained": sustained,
        "layout": layout,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print("Sustained group-apply: janitor on vs off "
          f"({MVCC_MEASURE_SECONDS:.2f}s per scan measurement)")
    print(format_table(
        ["history", "max_chain_on", "max_chain_off", "retained_rows_on",
         "retained_rows_off", "scan_per_s_on", "scan_per_s_off", "read_speedup"],
        [{k: row[k] for k in
          ("history", "max_chain_on", "max_chain_off", "retained_rows_on",
           "retained_rows_off", "scan_per_s_on", "scan_per_s_off", "read_speedup")}
         for row in sustained],
    ))
    print("Row layout: O(1) linked chain vs seed list layout")
    print(format_table(
        ["chain_length", "linked_installs_per_s", "legacy_installs_per_s",
         "install_speedup"],
        [{k: row[k] for k in
          ("chain_length", "linked_installs_per_s", "legacy_installs_per_s",
           "install_speedup")}
         for row in layout],
    ))

    for row in sustained:
        # Maintained chains are bounded by the batch cadence, not history:
        # the final janitor pass cuts every chain to its live suffix.
        assert row["max_chain_on"] <= CHAIN_BOUND, row
        # The unmaintained replica demonstrates the problem: chains grow
        # with history (each hot key absorbs history/HOT_KEYS updates).
        assert row["max_chain_off"] >= row["history"] // HOT_KEYS, row
        # ...and its directory retains every churned row ever inserted.
        assert row["retained_rows_off"] >= row["history"] - CHURN_LIFETIME
        assert row["retained_rows_on"] <= LIVE_ROWS + CHURN_LIFETIME + BATCH_WRITESETS

    # Acceptance: at the paper-scale history the maintained replica scans
    # >= 2x faster (armed only when that point is in the measured axes).
    for row in sustained:
        if row["history"] >= ACCEPTANCE_HISTORY:
            assert row["read_speedup"] >= READ_SPEEDUP_FLOOR, (
                f"janitor-on scans only {row['read_speedup']}x faster than "
                f"janitor-off at history {row['history']}"
            )

    # The linked layout must never lose to the seed layout on installs.
    for row in layout:
        assert row["install_speedup"] >= 1.0, row
