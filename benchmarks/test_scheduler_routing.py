"""Scheduler-routing benchmark: pinned vs routed transaction placement.

The paper's evaluation statically pins a fixed client population to each
replica; the cluster scheduler (``repro.balancer``) replaces that with
per-transaction routing.  This benchmark measures what the routing policy
costs — and buys — on the two update-heavy workloads:

* **AllUpdates with an update burst** (``update_burst`` consecutive
  rewrites of the same counter row per client, the session-affinity
  scenario axis): a replica only learns about a commit one durability round
  trip later, so a scheduler that bounces a mid-burst client onto a replica
  that has not yet applied its previous commit buys a *certification abort
  against the client's own predecessor writeset*.  Round-robin does exactly
  that; conflict-aware affinity routing keeps the burst on one replica and
  eliminates those aborts.
* **TPC-B**: genuine cross-client hot-row conflicts, which replica
  placement cannot remove (every replica's conflict window against the
  certifier head is the same one-round-trip wide).  Here the benchmark
  checks routing does not *cost* throughput — the conflict-aware policy's
  load-slack guard is what keeps hot branch affinity from herding the
  workload onto one replica.

Pinned mode runs the untouched seed code path (no scheduler is even
constructed), so its numbers double as the no-regression reference.
Results land in ``BENCH_scheduler.json`` at the repo root; axes are
env-tunable via ``REPRO_BENCH_SCHED_REPLICAS`` / ``REPRO_BENCH_SCHED_BURST``
(see ``benchmarks/conftest.py`` and ``docs/benchmarks.md``).
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

from conftest import (
    MEASURE_MS,
    SCHED_REPLICAS,
    SCHED_UPDATE_BURST,
    WARMUP_MS,
)

from repro.analysis.report import format_table
from repro.cluster.experiment import ExperimentConfig, run_experiment
from repro.core.config import SystemKind, WorkloadName

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_scheduler.json"

#: Routing legs measured at every point ("pinned" = no scheduler at all).
MAIN_LEGS = ("pinned", "round-robin", "conflict-aware")
#: Extra policies measured at the largest point for the comparison table.
EXTRA_LEGS = ("least-loaded", "staleness-aware")

#: Acceptance: at every >= 4-replica AllUpdates point, round-robin must pay
#: a visible abort rate and conflict-aware must cut it at least in half.
RR_ABORT_FLOOR = 0.01
CA_ABORT_CEILING_FACTOR = 0.5
#: Routed legs must stay within this factor of pinned throughput (TPC-B),
#: and conflict-aware must not regress pinned on AllUpdates.
THROUGHPUT_FLOOR = 0.75
CA_THROUGHPUT_FLOOR = 0.90


def _workload_options(workload: WorkloadName) -> dict | None:
    if workload is WorkloadName.ALL_UPDATES:
        return {"update_burst": SCHED_UPDATE_BURST}
    return None


def _run_point(workload: WorkloadName, num_replicas: int, leg: str) -> dict:
    config = ExperimentConfig(
        system=SystemKind.TASHKENT_MW,
        workload=workload,
        num_replicas=num_replicas,
        routing=None if leg == "pinned" else leg,
        workload_options=_workload_options(workload),
        warmup_ms=WARMUP_MS,
        measure_ms=MEASURE_MS,
    )
    result = run_experiment(config)
    stats = result.utilization
    return {
        "workload": workload.value,
        "policy": leg,
        "replicas": num_replicas,
        "throughput_tps": round(result.throughput_tps, 1),
        "abort_rate": round(result.abort_rate, 4),
        "mean_response_ms": round(result.mean_response_ms, 1),
        "routed_imbalance": round(
            float(stats.get("scheduler_routed_imbalance", 0.0)), 2),
        "admission_timeouts": int(stats.get("scheduler_admission_timeouts", 0)),
    }


def _run_matrix() -> list[dict]:
    rows = []
    for workload in (WorkloadName.ALL_UPDATES, WorkloadName.TPC_B):
        for num_replicas in SCHED_REPLICAS:
            for leg in MAIN_LEGS:
                rows.append(_run_point(workload, num_replicas, leg))
    # The policy comparison table: one extra point per remaining policy.
    largest = max(SCHED_REPLICAS)
    for leg in EXTRA_LEGS:
        rows.append(_run_point(WorkloadName.ALL_UPDATES, largest, leg))
    return rows


def test_scheduler_routing_and_emit_bench_json():
    rows = _run_matrix()

    payload = {
        "benchmark": "scheduler_routing",
        "python": platform.python_version(),
        "system": SystemKind.TASHKENT_MW.value,
        "update_burst": SCHED_UPDATE_BURST,
        "measure_ms": MEASURE_MS,
        "results": rows,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    columns = ["workload", "policy", "replicas", "throughput_tps",
               "abort_rate", "routed_imbalance"]
    print()
    print(f"Scheduler routing (Tashkent-MW, AllUpdates burst={SCHED_UPDATE_BURST})")
    print(format_table(columns, [{k: row[k] for k in columns} for row in rows]))

    by_point = {(r["workload"], r["policy"], r["replicas"]): r for r in rows}
    for num_replicas in SCHED_REPLICAS:
        allup = {leg: by_point[(WorkloadName.ALL_UPDATES.value, leg, num_replicas)]
                 for leg in MAIN_LEGS}
        # Pinned mode never self-conflicts and is the throughput reference.
        assert allup["pinned"]["abort_rate"] <= 0.005, (
            f"pinned AllUpdates should not abort, got "
            f"{allup['pinned']['abort_rate']} at {num_replicas} replicas"
        )
        # The acceptance property: round-robin pays staleness self-conflict
        # aborts that conflict-aware routing removes.
        rr_aborts = allup["round-robin"]["abort_rate"]
        ca_aborts = allup["conflict-aware"]["abort_rate"]
        assert rr_aborts >= RR_ABORT_FLOOR, (
            f"round-robin shows no aborts to cut ({rr_aborts}) at "
            f"{num_replicas} replicas — burst axis broken?"
        )
        assert ca_aborts <= rr_aborts * CA_ABORT_CEILING_FACTOR, (
            f"conflict-aware abort rate {ca_aborts} not below half of "
            f"round-robin's {rr_aborts} at {num_replicas} replicas"
        )
        # Affinity routing must not buy that with throughput: it has to
        # stay within a few percent of the pinned reference.
        assert (allup["conflict-aware"]["throughput_tps"]
                >= CA_THROUGHPUT_FLOOR * allup["pinned"]["throughput_tps"])

        tpcb = {leg: by_point[(WorkloadName.TPC_B.value, leg, num_replicas)]
                for leg in MAIN_LEGS}
        # Placement cannot remove TPC-B's genuine conflicts; routing must
        # at least not cost meaningful throughput vs pinned.
        for leg in ("round-robin", "conflict-aware"):
            assert (tpcb[leg]["throughput_tps"]
                    >= THROUGHPUT_FLOOR * tpcb["pinned"]["throughput_tps"]), (
                f"{leg} TPC-B throughput regressed below "
                f"{THROUGHPUT_FLOOR}x pinned at {num_replicas} replicas"
            )
