"""Unit tests for artificial-conflict detection (paper Section 5.2.1)."""

from repro.core.artificial_conflicts import ArtificialConflictDetector, SubmissionPlan
from repro.core.certification import RemoteWriteSetInfo
from repro.core.writeset import make_writeset


def info(version, *keys, horizon=0):
    return RemoteWriteSetInfo(
        commit_version=version,
        writeset=make_writeset([("t", k) for k in keys]),
        origin_replica="remote",
        conflict_free_back_to=horizon,
    )


def test_no_conflicts_yields_single_concurrent_group():
    detector = ArtificialConflictDetector()
    plan = detector.plan([info(1, "a"), info(2, "b"), info(3, "c")], replica_version=0)
    assert len(plan.groups) == 1
    assert plan.artificial_conflicts == 0
    assert plan.serialization_points == 0
    assert plan.flush_count() == 1
    assert plan.total_writesets == 3


def test_paper_example_w43_w45_conflict_forces_serialization():
    # W43 sets x=17 and W45 sets x=39: they must be serialised (Figure 3).
    detector = ArtificialConflictDetector()
    plan = detector.plan([info(43, "x"), info(45, "x")], replica_version=42)
    assert len(plan.groups) == 2
    assert plan.artificial_conflicts == 1
    assert plan.flush_count() == 2


def test_conflicting_writesets_in_separate_groups_keep_order():
    detector = ArtificialConflictDetector()
    plan = detector.plan(
        [info(1, "a"), info(2, "a"), info(3, "b"), info(4, "b")], replica_version=0
    )
    versions = [[i.commit_version for i in group] for group in plan.groups]
    flat = [v for group in versions for v in group]
    assert flat == [1, 2, 3, 4]  # commit order is never reordered
    assert plan.artificial_conflicts >= 2


def test_insufficient_certifier_horizon_forces_serialization():
    # The certifier could only vouch for version 5 back to version 3, but the
    # replica is at version 2: the proxy cannot submit it concurrently.
    detector = ArtificialConflictDetector(use_pairwise_check=False)
    plan = detector.plan([info(4, "a", horizon=2), info(5, "b", horizon=3)], replica_version=2)
    assert len(plan.groups) == 2


def test_empty_plan_and_flush_count_with_local_commit_only():
    detector = ArtificialConflictDetector()
    plan = detector.plan([], replica_version=10)
    assert plan.groups == []
    assert plan.flush_count(include_local_commit=True) == 1
    assert plan.flush_count(include_local_commit=False) == 0


def test_worst_case_every_writeset_serialised_degrades_to_base():
    detector = ArtificialConflictDetector()
    infos = [info(v, "hot") for v in range(1, 6)]
    plan = detector.plan(infos, replica_version=0)
    assert len(plan.groups) == 5
    # One flush per group: exactly the Base behaviour the paper warns about.
    assert plan.flush_count() == 5


def test_pairwise_conflict_rate_helper():
    writesets = [make_writeset([("t", "a")]), make_writeset([("t", "a")]),
                 make_writeset([("t", "b")])]
    rate = ArtificialConflictDetector.pairwise_conflict_rate(writesets)
    assert rate == 0.5
    assert ArtificialConflictDetector.pairwise_conflict_rate([]) == 0.0
    assert ArtificialConflictDetector.pairwise_conflict_rate(writesets[:1]) == 0.0


def test_detector_accumulates_statistics():
    detector = ArtificialConflictDetector()
    detector.plan([info(1, "x"), info(2, "x")], replica_version=0)
    detector.plan([info(3, "y")], replica_version=2)
    assert detector.batches_planned == 2
    assert detector.artificial_conflicts_found == 1
