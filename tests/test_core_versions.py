"""Unit tests for GSI version bookkeeping."""

import pytest

from repro.core.versions import Snapshot, TransactionVersions, VersionClock
from repro.errors import ConfigurationError


def test_version_clock_starts_at_zero_and_increments():
    clock = VersionClock()
    assert clock.version == 0
    assert clock.increment() == 1
    assert clock.increment() == 2
    assert clock.version == 2


def test_version_clock_advance_to_allows_jumps():
    clock = VersionClock()
    clock.advance_to(5)
    assert clock.version == 5
    clock.advance_to(5)  # idempotent
    assert clock.version == 5


def test_version_clock_rejects_regression():
    clock = VersionClock(initial=3)
    with pytest.raises(ConfigurationError):
        clock.advance_to(2)


def test_version_clock_rejects_negative_initial():
    with pytest.raises(ConfigurationError):
        VersionClock(initial=-1)


def test_snapshot_visibility_helpers():
    snapshot = VersionClock(initial=7).snapshot("replica-1")
    assert isinstance(snapshot, Snapshot)
    assert snapshot.version == 7
    assert snapshot.replica == "replica-1"
    assert snapshot.is_at_least(7)
    assert not snapshot.is_at_least(8)


def test_snapshot_rejects_negative_version():
    with pytest.raises(ConfigurationError):
        Snapshot(version=-1)


def test_transaction_versions_effective_start_defaults_to_start():
    versions = TransactionVersions(tx_start_version=4)
    assert versions.effective_start_version == 4
    assert not versions.is_committed


def test_transaction_versions_advance_effective_start_only_forward():
    versions = TransactionVersions(tx_start_version=4)
    versions.advance_effective_start(6)
    assert versions.effective_start_version == 6
    versions.advance_effective_start(5)  # ignored, never regresses
    assert versions.effective_start_version == 6


def test_transaction_versions_commit_must_exceed_start():
    versions = TransactionVersions(tx_start_version=4)
    with pytest.raises(ConfigurationError):
        versions.mark_committed(4)
    versions.mark_committed(9)
    assert versions.is_committed
    assert versions.tx_commit_version == 9
