"""Tests for Paxos, the replicated log and the replicated certifier group."""

import pytest

from repro.consensus.group import ReplicatedCertifierGroup
from repro.consensus.log import ReplicatedLog, ReplicatedLogNode
from repro.consensus.paxos import Acceptor, Ballot, PaxosInstance, Proposer
from repro.consensus.sharded import ShardPaxosGroups
from repro.core.certification import CertificationRequest
from repro.core.writeset import make_writeset
from repro.errors import (
    ConfigurationError,
    ConsensusError,
    NotLeaderError,
    QuorumUnavailableError,
)


# ----------------------------------------------------------------- single-decree Paxos

def test_single_proposer_reaches_consensus():
    acceptors = [Acceptor(i) for i in range(3)]
    proposer = Proposer(0, acceptors)
    assert proposer.propose("value-A") == "value-A"
    # A later proposer must adopt the already chosen value.
    late = Proposer(1, acceptors)
    assert late.propose("value-B") == "value-A"


def test_paxos_requires_majority_of_acceptors():
    acceptors = [Acceptor(i) for i in range(3)]
    acceptors[0].crash()
    acceptors[1].crash()
    with pytest.raises(QuorumUnavailableError):
        Proposer(0, acceptors).propose("v")


def test_paxos_survives_minority_crash():
    acceptors = [Acceptor(i) for i in range(5)]
    acceptors[0].crash()
    acceptors[1].crash()
    assert Proposer(0, acceptors).propose("v") == "v"


def test_acceptor_promise_blocks_lower_ballots():
    acceptor = Acceptor(0)
    assert acceptor.prepare(Ballot(5, 1)).promised
    assert not acceptor.prepare(Ballot(4, 0)).promised
    assert not acceptor.accept(Ballot(4, 0), "x").accepted
    assert acceptor.accept(Ballot(5, 1), "y").accepted


def test_ballot_total_order():
    assert Ballot(1, 0) < Ballot(1, 1) < Ballot(2, 0)
    assert Ballot(1, 1) <= Ballot(1, 1)
    assert Ballot(3, 2).next_round() == Ballot(4, 2)


def test_paxos_instance_records_the_decision():
    acceptors = [Acceptor(i) for i in range(3)]
    instance = PaxosInstance(acceptors=acceptors)
    assert instance.decide(Proposer(0, acceptors), "v") == "v"
    assert instance.decided
    assert instance.chosen_value == "v"


def test_proposer_needs_acceptors_and_gives_up_after_max_rounds():
    with pytest.raises(ConsensusError):
        Proposer(0, [])
    acceptors = [Acceptor(i) for i in range(3)]
    for acceptor in acceptors:
        acceptor.prepare(Ballot(1000, 9))  # a far higher standing promise
    with pytest.raises(ConsensusError):
        Proposer(0, acceptors).propose("v", max_rounds=3)


# ----------------------------------------------------------------- replicated log

def make_log(n=3):
    nodes = [ReplicatedLogNode(node_id=i) for i in range(n)]
    return ReplicatedLog(nodes), nodes


def test_replicated_log_appends_through_leader_and_replicates():
    log, nodes = make_log()
    assert log.append("a") == 0
    assert log.append("b") == 1
    assert log.chosen_prefix() == ["a", "b"]
    for node in nodes:
        assert node.known_length() == 2


def test_replicated_log_rejects_non_leader_appends():
    log, _ = make_log()
    with pytest.raises(NotLeaderError):
        log.append("x", from_node=2)


def test_replicated_log_requires_quorum():
    log, nodes = make_log()
    nodes[1].crash()
    nodes[2].crash()
    with pytest.raises(QuorumUnavailableError):
        log.append("x")


def test_leader_failure_and_election():
    log, nodes = make_log()
    log.append("a")
    nodes[0].crash()
    assert log.elect_leader() == 1
    assert log.append("b") == 1
    assert log.chosen_prefix() == ["a", "b"]


def test_recovering_node_catches_up_by_state_transfer():
    log, nodes = make_log()
    nodes[2].crash()
    log.append("a")
    log.append("b")
    nodes[2].recover()
    transferred = log.catch_up(nodes[2])
    assert transferred == 2
    assert nodes[2].known_length() == 2


def test_replicated_log_edge_conditions():
    with pytest.raises(ConsensusError):
        ReplicatedLog([])
    log, nodes = make_log()
    for node in nodes:
        node.crash()
    with pytest.raises(QuorumUnavailableError):
        log.elect_leader()
    nodes[0].recover()
    with pytest.raises(QuorumUnavailableError):
        log.catch_up(nodes[0])  # no other up node to transfer from


def test_shard_groups_validate_and_reject_unknown_ids():
    with pytest.raises(ConfigurationError):
        ShardPaxosGroups(0)
    with pytest.raises(ConfigurationError):
        ShardPaxosGroups(1, nodes_per_shard=0)
    groups = ShardPaxosGroups(2, nodes_per_shard=3)
    with pytest.raises(KeyError):
        groups.group(5)
    with pytest.raises(KeyError):
        groups.crash_node(0, 9)
    with pytest.raises(KeyError):
        groups.recover_node(0, 9)
    assert groups.up_count(0) == 3
    groups.crash_node(0, 2)
    assert groups.up_count(0) == 2
    assert groups.recover_node(0, 2) == 0  # nothing appended yet
    assert "shards=2" in repr(groups)


# ----------------------------------------------------------------- replicated certifier group

def certify(group, key, start=0):
    return group.certify(
        CertificationRequest(tx_start_version=start, writeset=make_writeset([("t", key)]),
                             replica_version=start)
    )


def test_group_certifies_and_replicates_to_majority():
    group = ReplicatedCertifierGroup(3)
    result = certify(group, "a")
    assert result.committed
    assert group.logs_consistent()
    assert group.node_log_length(0) == 1
    assert group.node_log_length(1) == 1
    assert group.certifier.log.durable_version == 1


def test_group_makes_progress_with_one_node_down():
    group = ReplicatedCertifierGroup(3)
    group.crash_node(2)
    assert certify(group, "a").committed
    assert group.up_count() == 2


def test_group_refuses_updates_without_majority():
    group = ReplicatedCertifierGroup(3)
    group.crash_node(1)
    group.crash_node(2)
    with pytest.raises(QuorumUnavailableError):
        certify(group, "a")


def test_leader_crash_triggers_election_and_continues():
    group = ReplicatedCertifierGroup(3)
    certify(group, "a")
    group.crash_node(group.leader_id)
    result = certify(group, "b", start=1)
    assert result.committed
    assert group.stats.leader_changes == 1
    assert group.logs_consistent()


def test_recovered_node_catches_up_with_missed_records():
    group = ReplicatedCertifierGroup(3)
    certify(group, "a")
    group.crash_node(2)
    certify(group, "b", start=1)
    certify(group, "c", start=2)
    transferred = group.recover_node(2)
    assert transferred == 2
    assert group.node_log_length(2) == 3
    assert group.logs_consistent()


def test_conflicts_still_abort_through_the_group():
    group = ReplicatedCertifierGroup(3)
    assert certify(group, "x").committed
    assert not certify(group, "x").committed
    # Aborted transactions are never replicated.
    assert group.node_log_length(0) == 1
