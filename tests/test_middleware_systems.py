"""Integration tests: whole replicated systems built from the public API."""

import pytest

from repro.core.config import ReplicationConfig, SystemKind
from repro.errors import ConfigurationError, TransactionAborted
from repro.middleware.systems import (
    build_base_system,
    build_replicated_system,
    build_tashkent_api_system,
    build_tashkent_mw_system,
)

BUILDERS = [build_base_system, build_tashkent_mw_system, build_tashkent_api_system]


def loaded_system(builder, num_replicas=3):
    system = builder(num_replicas=num_replicas)
    system.create_table("accounts", ["id", "balance"])

    def loader(session):
        session.begin()
        for i in range(12):
            session.insert("accounts", i, id=i, balance=100)
        assert session.commit().committed

    system.load_initial_data(loader)
    return system


@pytest.mark.parametrize("builder", BUILDERS)
def test_updates_on_any_replica_propagate_to_all(builder):
    system = loaded_system(builder)
    for replica_index in range(3):
        session = system.session(replica_index, client_name=f"c{replica_index}")
        session.begin()
        row = session.read("accounts", replica_index)
        session.update("accounts", replica_index, balance=row["balance"] + replica_index + 1)
        assert session.commit().committed
    assert system.replicas_consistent()
    reference = system.session(0)
    reference.begin()
    assert reference.read("accounts", 2)["balance"] == 103
    reference.commit()


@pytest.mark.parametrize("builder", BUILDERS)
def test_cross_replica_conflict_commits_exactly_one(builder):
    system = loaded_system(builder)
    s0 = system.session(0, client_name="c0")
    s1 = system.session(1, client_name="c1")
    s0.begin()
    s1.begin()
    outcomes = []
    for session, value in ((s0, 111), (s1, 222)):
        try:
            session.update("accounts", 7, balance=value)
            outcomes.append(session.commit().committed)
        except TransactionAborted:
            outcomes.append(False)
    assert outcomes.count(True) == 1
    assert system.replicas_consistent()


def test_fsync_accounting_separates_the_three_designs():
    """The core claim: where the synchronous writes happen differs by design."""
    workload = range(20)

    def run(builder):
        system = loaded_system(builder, num_replicas=2)
        sessions = [system.session(i % 2, client_name=f"c{i}") for i in range(2)]
        for i in workload:
            session = sessions[i % 2]
            session.begin()
            row = session.read("accounts", i % 12)
            session.update("accounts", i % 12, balance=row["balance"] + 1)
            session.commit()
        return system.total_fsyncs(), system

    base_fsyncs, _ = run(build_base_system)
    mw_fsyncs, mw_system = run(build_tashkent_mw_system)
    api_fsyncs, _ = run(build_tashkent_api_system)

    # Tashkent-MW replicas never write synchronously; Base replicas write for
    # every remote batch and every local commit; Tashkent-API writes grouped
    # flushes, strictly fewer than Base.
    assert mw_fsyncs["replicas"] == 0
    assert base_fsyncs["replicas"] > api_fsyncs["replicas"] > 0
    # Durability never disappears: the certifier logs in all three designs.
    assert mw_fsyncs["certifier"] > 0
    assert base_fsyncs["certifier"] > 0
    assert mw_system.certifier.log.durable_version == mw_system.certifier.system_version


def test_checkpoint_all_and_stats_snapshot():
    system = loaded_system(build_tashkent_mw_system, num_replicas=2)
    system.checkpoint_all()
    for replica in system.replicas:
        assert len(replica.checkpoints) == 1
    stats = system.stats()
    assert stats["system"] == "tashkent-mw"
    assert stats["num_replicas"] == 2
    assert len(stats["replicas"]) == 2


def test_build_replicated_system_rejects_standalone():
    with pytest.raises(ConfigurationError):
        build_replicated_system(ReplicationConfig(system=SystemKind.STANDALONE))


def test_session_index_out_of_range():
    system = loaded_system(build_base_system, num_replicas=2)
    with pytest.raises(ConfigurationError):
        system.session(5)


def test_sessions_round_robin_spread_over_replicas():
    system = loaded_system(build_base_system, num_replicas=3)
    sessions = system.sessions_round_robin(6)
    replicas = {session.proxy.replica_name for session in sessions}
    assert replicas == {"replica-0", "replica-1", "replica-2"}


def test_forced_abort_rate_flows_through_the_system():
    config = ReplicationConfig(system=SystemKind.TASHKENT_MW, num_replicas=1,
                               forced_abort_rate=0.99, rng_seed=5)
    system = build_replicated_system(config)
    system.create_table("accounts", ["id", "balance"])

    def loader(session):
        session.begin()
        session.insert("accounts", 0, id=0, balance=0)
        session.commit()

    # With a 99% forced-abort rate the initial load may need several tries.
    session = system.session(0)
    aborted = 0
    for attempt in range(200):
        session.begin()
        session.insert("accounts", attempt + 1, id=attempt + 1, balance=0)
        if session.commit().committed:
            pass
        else:
            aborted += 1
    assert aborted > 100
