"""Tests for the client session layer."""

import pytest

from repro.errors import InvalidTransactionState, TransactionAborted
from repro.middleware.systems import build_tashkent_mw_system


@pytest.fixture
def system():
    system = build_tashkent_mw_system(num_replicas=2)
    system.create_table("items", ["id", "value"])

    def loader(session):
        session.begin()
        for i in range(5):
            session.insert("items", i, id=i, value=i)
        session.commit()

    system.load_initial_data(loader)
    return system


def test_session_requires_begin_before_statements(system):
    session = system.session(0)
    with pytest.raises(InvalidTransactionState):
        session.read("items", 1)
    with pytest.raises(InvalidTransactionState):
        session.commit()


def test_session_rejects_nested_begin(system):
    session = system.session(0)
    session.begin()
    with pytest.raises(InvalidTransactionState):
        session.begin()
    session.abort()


def test_commit_and_abort_counters(system):
    session = system.session(0)
    session.begin()
    session.update("items", 1, value=10)
    assert session.commit().committed
    session.begin()
    session.update("items", 2, value=20)
    session.abort()
    assert session.commits == 1
    assert session.aborts == 1
    assert not session.in_transaction


def test_transaction_context_manager_commits_on_success(system):
    session = system.session(0)
    with session.transaction():
        value = session.read("items", 3)["value"]
        session.update("items", 3, value=value + 1)
    assert session.commits == 1
    assert session.run_readonly("items", 3)["value"] == 4


def test_transaction_context_manager_aborts_on_error(system):
    session = system.session(0)
    with pytest.raises(ValueError):
        with session.transaction():
            session.update("items", 3, value=99)
            raise ValueError("boom")
    assert session.aborts == 1
    assert session.run_readonly("items", 3)["value"] == 3


def test_conflicting_sessions_one_wins(system):
    a = system.session(0, client_name="a")
    b = system.session(1, client_name="b")
    a.begin()
    b.begin()
    results = []
    for session, value in ((a, 1), (b, 2)):
        try:
            session.update("items", 4, value=value)
            results.append(session.commit().committed)
        except TransactionAborted:
            results.append(False)
    assert results.count(True) == 1


def test_scan_through_session(system):
    session = system.session(0)
    session.begin()
    rows = session.scan("items")
    session.commit()
    assert len(rows) == 5


def test_delete_through_session(system):
    session = system.session(0)
    with session.transaction():
        session.delete("items", 0)
    assert session.run_readonly("items", 0) is None
    assert system.replicas_consistent()
