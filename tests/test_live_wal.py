"""Edge and property coverage for the live shard WAL (`repro/live/wal.py`).

Pure file-level tests: no sockets, no subprocesses.  The interesting
surface is crash replay — a torn final line (kill mid-write) must be
discarded *and truncated away*, `last_seq` dedupe must survive restarts,
and the test oracle `read_wal_batches` must agree with the node's own
`BatchWalFile._replay` on every possible torn prefix.
"""

from __future__ import annotations

import json

from repro.live.wal import BatchWalFile, read_wal_batches


def _write_batches(path, batches):
    with open(path, "wb") as handle:
        for seq, payloads in batches:
            entry = {"seq": seq, "payloads": [p.hex() for p in payloads]}
            handle.write(json.dumps(entry, separators=(",", ":")).encode() + b"\n")


def _wal_lines(path):
    return [json.loads(line) for line in path.read_bytes().splitlines()]


def test_empty_file_replays_to_zero(tmp_path):
    path = tmp_path / "shard.wal"
    path.write_bytes(b"")
    wal = BatchWalFile(path)
    assert wal.last_seq == 0
    assert wal.batches == 0
    assert read_wal_batches(path) == []
    assert wal.append_batch(1, [b"x"])
    wal.close()


def test_missing_file_starts_fresh(tmp_path):
    wal = BatchWalFile(tmp_path / "shard.wal")
    assert wal.last_seq == 0
    assert wal.append_batch(1, [b"a"]) and wal.append_batch(2, [b"b"])
    assert [b["seq"] for b in read_wal_batches(wal.path)] == [1, 2]
    wal.close()


def test_duplicate_seq_file_counts_once_per_line(tmp_path):
    # A file that already holds the same seq twice (a historic double-accept)
    # must still replay to that seq and keep deduping appends at it.
    path = tmp_path / "shard.wal"
    _write_batches(path, [(1, [b"a"]), (2, [b"b"]), (2, [b"b"])])
    wal = BatchWalFile(path)
    assert wal.last_seq == 2
    assert wal.batches == 3
    assert not wal.append_batch(2, [b"b"])
    assert wal.duplicate_batches_skipped == 1
    assert wal.append_batch(3, [b"c"])
    wal.close()


def test_torn_tail_truncated_at_every_byte_offset(tmp_path):
    # Crash the write of the final line at every byte boundary: replay must
    # keep exactly the intact prefix, truncate the torn bytes, and agree
    # with read_wal_batches about what survived.
    good = [(1, [b"alpha"]), (2, [b"bravo", b"charlie"])]
    torn_entry = {"seq": 3, "payloads": [b"delta".hex()]}
    torn_line = json.dumps(torn_entry, separators=(",", ":")).encode() + b"\n"
    for cut in range(len(torn_line)):  # cut == len would be an intact line
        path = tmp_path / f"shard-{cut}.wal"
        _write_batches(path, good)
        intact_size = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(torn_line[:cut])
        oracle = read_wal_batches(path)
        wal = BatchWalFile(path)
        assert wal.last_seq == 2
        assert wal.batches == 2
        assert [b["seq"] for b in oracle] == [1, 2]
        assert wal.torn_bytes_truncated == cut
        assert path.stat().st_size == intact_size
        wal.close()


def test_torn_tail_mid_file_double_crash_regression(tmp_path):
    # The double-crash bug: crash 1 leaves a torn line; the restarted node
    # appends new batches after it; crash 2's replay must NOT stop at the
    # stale torn line and drop (or re-accept) the later batches.
    path = tmp_path / "shard.wal"
    _write_batches(path, [(1, [b"a"]), (2, [b"b"])])
    with open(path, "ab") as handle:
        handle.write(b'{"seq":3,"payl')  # crash 1: torn mid-line

    wal = BatchWalFile(path)  # restart 1 truncates the torn tail
    assert wal.last_seq == 2
    assert wal.append_batch(3, [b"c"])
    assert wal.append_batch(4, [b"d"])
    wal.close()  # crash 2 (clean close is the harshest case: file intact)

    wal2 = BatchWalFile(path)  # restart 2 must see everything
    assert wal2.last_seq == 4
    assert wal2.batches == 4
    assert not wal2.append_batch(4, [b"d"])  # duplicate still deduped
    assert [b["seq"] for b in read_wal_batches(path)] == [1, 2, 3, 4]
    wal2.close()


def test_replay_agrees_with_read_wal_batches_on_corrupt_json_line(tmp_path):
    # A non-torn but unparsable line (bit rot) stops both readers at the
    # same boundary.
    path = tmp_path / "shard.wal"
    _write_batches(path, [(1, [b"a"])])
    with open(path, "ab") as handle:
        handle.write(b"this is not json\n")
        handle.write(
            json.dumps({"seq": 2, "payloads": [b"b".hex()]},
                       separators=(",", ":")).encode() + b"\n")
    oracle = read_wal_batches(path)
    wal = BatchWalFile(path)
    assert [b["seq"] for b in oracle] == [1]
    assert wal.last_seq == 1
    assert wal.batches == 1
    wal.close()


def test_append_after_truncation_round_trips_payloads(tmp_path):
    path = tmp_path / "shard.wal"
    _write_batches(path, [(1, [b"keep"])])
    with open(path, "ab") as handle:
        handle.write(b'{"seq":2,"pa')
    wal = BatchWalFile(path)
    wal.append_batch(2, [b"\x00\xffbinary", b""])
    wal.close()
    batches = read_wal_batches(path)
    assert batches[0]["payloads"] == [b"keep"]
    assert batches[1]["payloads"] == [b"\x00\xffbinary", b""]
    assert _wal_lines(path)[-1]["seq"] == 2
