"""Unit tests for the versioned row store and tables."""

import pytest

from repro.engine.rows import RowVersion, VersionedRow
from repro.engine.table import Table, TableSchema
from repro.errors import DuplicateKeyError, StorageError


# ----------------------------------------------------------------- row versions

def test_row_version_visibility_rule():
    version = RowVersion(created_version=3, values={"v": 1})
    assert not version.visible_to(2)
    assert version.visible_to(3)
    deleted = version.with_deletion(5)
    assert deleted.visible_to(4)
    assert not deleted.visible_to(5)


def test_row_version_cannot_be_deleted_twice():
    version = RowVersion(created_version=1, values={}).with_deletion(2)
    with pytest.raises(StorageError):
        version.with_deletion(3)


def test_versioned_row_snapshot_reads_see_correct_history():
    row = VersionedRow("k")
    row.install(RowVersion(created_version=1, values={"v": "a"}))
    row.install(RowVersion(created_version=3, values={"v": "b"}))
    assert row.version_for_snapshot(1).values["v"] == "a"
    assert row.version_for_snapshot(2).values["v"] == "a"
    assert row.version_for_snapshot(3).values["v"] == "b"
    assert row.version_for_snapshot(0) is None
    assert row.last_modified_version == 3
    assert row.version_count() == 2


def test_versioned_row_delete_and_existence():
    row = VersionedRow("k")
    row.install(RowVersion(created_version=1, values={"v": 1}))
    row.delete(4)
    assert row.exists_at(3)
    assert not row.exists_at(4)
    assert row.last_modified_version == 4


def test_versioned_row_rejects_out_of_order_installs():
    row = VersionedRow("k")
    row.install(RowVersion(created_version=5, values={}))
    with pytest.raises(StorageError):
        row.install(RowVersion(created_version=5, values={}))


def test_vacuum_drops_versions_invisible_to_oldest_snapshot():
    row = VersionedRow("k")
    for version in (1, 2, 3, 4):
        row.install(RowVersion(created_version=version, values={"v": version}))
    removed = row.vacuum(oldest_active_snapshot=3)
    assert removed == 2
    assert row.version_for_snapshot(3).values["v"] == 3
    assert row.version_for_snapshot(4).values["v"] == 4


# ----------------------------------------------------------------- tables

def make_table():
    return Table(TableSchema("accounts", ("id", "balance"), "id"))


def test_schema_validation():
    with pytest.raises(StorageError):
        TableSchema("t", (), "id")
    with pytest.raises(StorageError):
        TableSchema("t", ("a", "b"), "id")
    with pytest.raises(StorageError):
        TableSchema("t", ("a", "a"), "a")
    schema = TableSchema("t", ("id", "x"), "id")
    with pytest.raises(StorageError):
        schema.validate_values({"bogus": 1}, partial=True)
    with pytest.raises(StorageError):
        schema.validate_values({"id": 1}, partial=False)


def test_table_insert_update_delete_with_snapshots():
    table = make_table()
    table.install_insert(1, {"id": 1, "balance": 10}, commit_version=1)
    table.install_update(1, {"balance": 20}, commit_version=2)
    assert table.read(1, 1)["balance"] == 10
    assert table.read(1, 2)["balance"] == 20
    table.install_delete(1, commit_version=3)
    assert table.read(1, 2) is not None
    assert table.read(1, 3) is None
    assert table.last_modified_version(1) == 3


def test_table_duplicate_insert_rejected_but_reinsert_after_delete_ok():
    table = make_table()
    table.install_insert(1, {"id": 1, "balance": 10}, commit_version=1)
    with pytest.raises(DuplicateKeyError):
        table.install_insert(1, {"id": 1, "balance": 99}, commit_version=2)
    table.install_delete(1, commit_version=2)
    table.install_insert(1, {"id": 1, "balance": 5}, commit_version=3)
    assert table.read(1, 3)["balance"] == 5


def test_table_update_of_unknown_row_is_an_upsert_for_replay():
    table = make_table()
    table.install_update(7, {"balance": 3}, commit_version=2)
    row = table.read(7, 2)
    assert row["balance"] == 3
    assert row["id"] == 7  # primary key synthesised
    # Deleting a row that never existed is an idempotent no-op.
    table.install_delete(42, commit_version=3)


def test_table_scan_and_count_respect_snapshots():
    table = make_table()
    for key in range(4):
        table.install_insert(key, {"id": key, "balance": key}, commit_version=key + 1)
    assert table.count(2) == 2
    assert table.count(4) == 4
    assert [key for key, _ in table.scan(3)] == [0, 1, 2]
    assert len(table) == 4


def test_table_snapshot_state_and_vacuum():
    table = make_table()
    table.install_insert(1, {"id": 1, "balance": 1}, commit_version=1)
    table.install_update(1, {"balance": 2}, commit_version=2)
    state = table.snapshot_state(2)
    assert state == {1: {"id": 1, "balance": 2}}
    assert table.vacuum(2) == 1
