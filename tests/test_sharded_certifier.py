"""Tests for the sharded certifier front-ends in both stacks.

Covers the functional :class:`ShardedCertifierService` (per-shard fsync
pipelines, merged propagation, disconnect hygiene), the transport-layer
:class:`MergedSubscription` (deterministic version-ordered merge, held-gap
release, out-of-band advances) and the simulated
:class:`SimShardedCertifierNode` (per-shard log devices, release once all
touched shards flushed, full-cluster runs on every system kind).
"""

import pytest

from repro.cluster.experiment import ExperimentConfig, run_experiment
from repro.core.certification import CertificationRequest, RemoteWriteSetInfo
from repro.core.config import ReplicationConfig, SystemKind, WorkloadName
from repro.core.writeset import make_writeset
from repro.errors import ConfigurationError
from repro.middleware.certifier import CertifierConfig, CertifierService
from repro.middleware.sharded_certifier import (
    ShardedCertifierService,
    make_certifier_service,
)
from repro.middleware.systems import build_replicated_system
from repro.transport import MergedSubscription, WritesetStream


def request(service, entries, *, start=None, origin="r0"):
    current = service.system_version
    return CertificationRequest(
        tx_start_version=current if start is None else start,
        writeset=make_writeset(entries),
        replica_version=current,
        origin_replica=origin,
    )


def shard_key(partitioner, shard_id, table="t"):
    return next(k for k in range(10_000)
                if partitioner.shard_of((table, k)) == shard_id)


# ---------------------------------------------------------------------------- factory


def test_make_certifier_service_picks_implementation():
    assert isinstance(make_certifier_service(CertifierConfig()), CertifierService)
    assert isinstance(make_certifier_service(CertifierConfig(shards=1)), CertifierService)
    sharded = make_certifier_service(CertifierConfig(shards=3))
    assert isinstance(sharded, ShardedCertifierService)
    with pytest.raises(ConfigurationError):
        CertifierService(CertifierConfig(shards=2))


# ---------------------------------------------------------------------------- functional service


def test_single_shard_commit_costs_one_shard_fsync():
    service = ShardedCertifierService(CertifierConfig(shards=4))
    key = shard_key(service.core.partitioner, 2)
    result = service.certify(request(service, [("t", key)]))
    assert result.committed
    assert [d.sync_count for d in service.devices] == [0, 0, 1, 0]
    assert service.core.durable_version == 1


def test_cross_shard_commit_is_durable_on_every_touched_shard():
    service = ShardedCertifierService(CertifierConfig(shards=2))
    k0 = shard_key(service.core.partitioner, 0)
    k1 = shard_key(service.core.partitioner, 1)
    result = service.certify(request(service, [("t", k0), ("t", k1)]))
    assert result.committed
    assert [d.sync_count for d in service.devices] == [1, 1]
    assert service.core.is_record_durable(result.tx_commit_version)
    assert service.fsync_count == 2
    assert service.writesets_per_fsync == 1.0


def test_subscriber_sees_version_ordered_merged_stream():
    service = ShardedCertifierService(CertifierConfig(shards=3))
    subscription = service.subscribe_replica("replica-A", 0)
    for k in range(25):
        assert service.certify(request(service, [("t", k)])).committed
    delivered = subscription.poll_flat()
    assert [info.commit_version for info in delivered] == list(range(1, 26))
    # Late joiner backfills the full history through the merged view.
    late = service.subscribe_replica("replica-B", 10)
    assert [i.commit_version for i in late.poll_flat()] == list(range(11, 26))


def test_disconnect_closes_every_shard_subscription():
    service = ShardedCertifierService(CertifierConfig(shards=3))
    service.subscribe_replica("replica-A", 0)
    assert sum(len(list(s.subscriptions())) for s in service.streams) == 3
    service.disconnect_replica("replica-A")
    assert sum(len(list(s.subscriptions())) for s in service.streams) == 0
    assert service.core.low_water_mark() is None


def test_sharded_gc_runs_on_the_request_interval():
    service = ShardedCertifierService(CertifierConfig(
        shards=2, gc_interval_requests=8, gc_headroom_versions=2))
    service.register_replica("r0", 0)
    for k in range(32):
        result = service.certify(request(service, [("t", k)]))
        assert result.committed
    assert service.core.pruned_version > 0
    assert service.stats()["gc_runs"] >= 1


def test_stats_dict_matches_single_service_shape():
    single = CertifierService()
    sharded = ShardedCertifierService(CertifierConfig(shards=2))
    assert set(sharded.stats()) == set(single.stats())
    assert sharded.stats()["shards"] == 2.0
    assert single.stats()["shards"] == 1.0


def test_non_durable_sharded_service_propagates_before_flush():
    service = ShardedCertifierService(CertifierConfig(shards=2,
                                                      durability_enabled=False))
    subscription = service.subscribe_replica("replica-A", 0)
    assert service.certify(request(service, [("t", 1)])).committed
    assert service.fsync_count == 0
    assert [i.commit_version for i in subscription.poll_flat()] == [1]


# ---------------------------------------------------------------------------- merged subscription


def _info(version, key=0):
    return RemoteWriteSetInfo(
        commit_version=version,
        writeset=make_writeset([("t", key)]),
        origin_replica="origin",
        conflict_free_back_to=0,
    )


def test_merged_subscription_holds_gaps_until_the_owing_shard_delivers():
    streams = [WritesetStream(), WritesetStream()]
    merged = MergedSubscription(
        [stream.subscribe("r") for stream in streams], name="r")
    # Shard 1 delivers versions 2,3 before shard 0 has flushed version 1.
    streams[1].offer(_info(2))
    streams[1].offer(_info(3))
    streams[1].flush()
    assert merged.poll() == []
    assert merged.held_count == 2
    assert merged.pending_writesets == 2
    streams[0].offer(_info(1))
    streams[0].flush()
    released = merged.poll()
    assert [i.commit_version for batch in released for i in batch] == [1, 2, 3]
    assert merged.held_count == 0
    assert merged.version == 3


def test_merged_subscription_advance_to_drops_held_and_trims_parts():
    streams = [WritesetStream(), WritesetStream()]
    merged = MergedSubscription([s.subscribe("r") for s in streams], name="r")
    streams[1].offer(_info(3))
    streams[1].flush()
    merged.advance_to(4)  # versions 1-4 arrived in-band with commits
    assert merged.poll() == []
    assert merged.held_count == 0
    streams[0].offer(_info(5))
    streams[0].flush()
    assert [i.commit_version for i in merged.poll_flat()] == [5]


def test_merged_subscription_backfill_counts_as_held_until_polled():
    stream = WritesetStream()
    merged = MergedSubscription([stream.subscribe("r")], from_version=2,
                                backfill=[_info(2), _info(3), _info(4)])
    assert merged.pending_writesets == 2  # version 2 is below the cursor
    assert [i.commit_version for i in merged.poll_flat()] == [3, 4]


# ---------------------------------------------------------------------------- simulated cluster


def _sim(system, shards, *, replicas=2, measure_ms=500, **overrides):
    return run_experiment(ExperimentConfig(
        system=system,
        workload=WorkloadName.ALL_UPDATES,
        num_replicas=replicas,
        certifier_shards=shards,
        warmup_ms=200.0,
        measure_ms=measure_ms,
        **overrides,
    ))


@pytest.mark.parametrize("system", [
    SystemKind.TASHKENT_MW,
    SystemKind.BASE,
    SystemKind.TASHKENT_API,
    SystemKind.TASHKENT_API_NO_CERT,
])
def test_sim_sharded_certifier_runs_every_system_kind(system):
    result = _sim(system, shards=3)
    assert result.throughput_tps > 0
    assert result.utilization["certifier_shards"] == 3.0
    assert result.utilization["certifier_fsyncs"] >= (
        0 if system is SystemKind.TASHKENT_API_NO_CERT else 1
    )


def test_sim_sharded_run_is_deterministic():
    first = _sim(SystemKind.TASHKENT_MW, shards=4)
    second = _sim(SystemKind.TASHKENT_MW, shards=4)
    assert first.throughput_tps == second.throughput_tps
    assert first.utilization["certifier_commits"] == second.utilization["certifier_commits"]


def test_sim_bounded_flush_batch_caps_the_fsync_group():
    result = _sim(SystemKind.TASHKENT_MW, shards=1, certifier_max_flush_batch=2,
                  replicas=4)
    per_fsync = result.utilization["certifier_writesets_per_fsync"]
    assert 0 < per_fsync <= 2.0


def test_sim_sharded_node_merges_in_version_order():
    """Drive the sharded node directly and check the replica-side stream."""
    from repro.cluster.nodes import SimShardedCertifierNode
    from repro.sim.kernel import Environment
    from repro.sim.rng import RandomStreams

    env = Environment()
    config = ReplicationConfig(system=SystemKind.TASHKENT_MW, num_replicas=1,
                               certifier_shards=3)
    node = SimShardedCertifierNode(env, config, RandomStreams(1),
                                   durability_enabled=True)
    node.register_replica("replica-0")
    results = []

    def one_client(index):
        for round_number in range(10):
            request = CertificationRequest(
                tx_start_version=node.core.system_version.version,
                writeset=make_writeset([("t", index * 1000 + round_number)]),
                replica_version=node.core.system_version.version,
                origin_replica="replica-0",
            )
            result = yield from node.certify(request)
            results.append(result)

    for index in range(4):
        env.process(one_client(index), name=f"client-{index}")
    env.run_until(10_000)
    assert not env.failed_processes
    assert sum(1 for r in results if r.committed) == 40

    subscription = node.subscription("replica-0")
    for stream in node.streams:
        stream.flush(now=env.now)
    delivered = subscription.poll_flat()
    assert [i.commit_version for i in delivered] == list(range(1, 41))


def test_functional_sharded_system_replicas_stay_consistent():
    config = ReplicationConfig(system=SystemKind.TASHKENT_MW, num_replicas=3,
                               certifier_shards=4)
    system = build_replicated_system(config)
    system.create_table("acct", ["id", "bal"])
    sessions = [system.session(i, client_name=f"c{i}") for i in range(3)]
    for i in range(9):
        session = sessions[i % 3]
        session.begin()
        session.insert("acct", i, id=i, bal=i)
        assert session.commit().committed
    assert system.replicas_consistent()
    assert system.certifier.stats()["shards"] == 4.0
    assert system.total_fsyncs()["certifier"] == system.certifier.fsync_count
