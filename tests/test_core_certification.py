"""Unit tests for the GSI certifier (paper Section 6.1 pseudo-code)."""

import pytest

from repro.core.certification import CertificationDecision, CertificationRequest, Certifier
from repro.core.writeset import WriteSet, make_writeset


def request(writeset, start=0, replica_version=0, replica="replica-0", back_to=None):
    return CertificationRequest(
        tx_start_version=start,
        writeset=writeset,
        replica_version=replica_version,
        origin_replica=replica,
        check_remote_back_to=back_to,
    )


def test_first_update_transaction_commits_at_version_one():
    certifier = Certifier()
    result = certifier.certify(request(make_writeset([("t", 1)])))
    assert result.decision is CertificationDecision.COMMIT
    assert result.tx_commit_version == 1
    assert certifier.system_version.version == 1
    assert certifier.log.last_version == 1


def test_non_conflicting_concurrent_transactions_both_commit():
    certifier = Certifier()
    first = certifier.certify(request(make_writeset([("t", 1)]), start=0))
    second = certifier.certify(request(make_writeset([("t", 2)]), start=0))
    assert first.committed and second.committed
    assert (first.tx_commit_version, second.tx_commit_version) == (1, 2)


def test_conflicting_concurrent_transaction_aborts():
    certifier = Certifier()
    certifier.certify(request(make_writeset([("t", 1)]), start=0))
    conflicting = certifier.certify(request(make_writeset([("t", 1)]), start=0))
    assert conflicting.decision is CertificationDecision.ABORT
    assert conflicting.tx_commit_version is None
    assert conflicting.conflicting_version == 1
    # The abort does not create a version.
    assert certifier.system_version.version == 1


def test_conflict_only_counts_if_committed_after_start_version():
    certifier = Certifier()
    certifier.certify(request(make_writeset([("t", 1)]), start=0))
    # The second transaction started *after* version 1, so it saw that update
    # and does not conflict with it.
    later = certifier.certify(request(make_writeset([("t", 1)]), start=1))
    assert later.committed
    assert later.tx_commit_version == 2


def test_readonly_request_commits_without_creating_a_version():
    certifier = Certifier()
    result = certifier.certify(request(WriteSet()))
    assert result.committed
    assert result.tx_commit_version is None
    assert certifier.system_version.version == 0
    assert certifier.readonly_requests == 1


def test_remote_writesets_cover_exactly_what_the_replica_has_not_seen():
    certifier = Certifier()
    for key in range(1, 5):
        certifier.certify(request(make_writeset([("t", key)]), start=0, replica="replica-A"))
    # A replica at version 2 committing its own transaction gets 3 and 4 back
    # (but not its own new commit version 5).
    result = certifier.certify(
        request(make_writeset([("x", 1)]), start=2, replica_version=2, replica="replica-B")
    )
    assert result.committed and result.tx_commit_version == 5
    assert [info.commit_version for info in result.remote_writesets] == [3, 4]


def test_aborted_request_still_receives_remote_writesets():
    certifier = Certifier()
    certifier.certify(request(make_writeset([("t", 1)]), start=0))
    result = certifier.certify(request(make_writeset([("t", 1)]), start=0, replica_version=0))
    assert not result.committed
    assert [info.commit_version for info in result.remote_writesets] == [1]


def test_forced_abort_rate_injects_aborts_after_certification():
    # A chooser that always returns 0.0 forces every certifiable request to abort.
    certifier = Certifier(forced_abort_rate=0.3, abort_chooser=lambda: 0.0)
    result = certifier.certify(request(make_writeset([("t", 1)])))
    assert not result.committed
    assert result.forced_abort
    assert certifier.forced_aborts == 1
    # Forced aborts never hide genuine conflicts statistics.
    assert certifier.aborts == 1


def test_forced_abort_disabled_without_chooser():
    certifier = Certifier(forced_abort_rate=0.9)
    result = certifier.certify(request(make_writeset([("t", 1)])))
    assert result.committed


def test_fetch_remote_writesets_for_staleness_refresh():
    certifier = Certifier()
    for key in range(3):
        certifier.certify(request(make_writeset([("t", key)]), start=key))
    remote = certifier.fetch_remote_writesets(1)
    assert [info.commit_version for info in remote] == [2, 3]


def test_extended_certification_reports_conflict_free_horizon():
    certifier = Certifier()
    certifier.certify(request(make_writeset([("t", 1)]), start=0, replica="A"))
    certifier.certify(request(make_writeset([("t", 2)]), start=1, replica="A"))
    # Replica B at version 0 asks for remote writesets checked back to 0.
    result = certifier.certify(
        request(make_writeset([("x", 9)]), start=0, replica_version=0, replica="B", back_to=0)
    )
    horizons = {info.commit_version: info.conflict_free_back_to for info in result.remote_writesets}
    # Writeset 1 and 2 do not conflict with anything back to version 0.
    assert horizons[1] == 0
    assert horizons[2] == 0


def test_extended_certification_keeps_horizon_when_conflict_found():
    certifier = Certifier()
    certifier.certify(request(make_writeset([("t", 1)]), start=0, replica="A"))
    # Version 2 conflicts with version 1 but was certified only back to 1.
    certifier.certify(request(make_writeset([("t", 1)]), start=1, replica="A"))
    result = certifier.certify(
        request(make_writeset([("x", 9)]), start=0, replica_version=0, replica="B", back_to=0)
    )
    horizons = {info.commit_version: info.conflict_free_back_to for info in result.remote_writesets}
    assert horizons[2] >= 1  # cannot be vouched for back to 0


def test_stats_snapshot_counts_requests_and_rate():
    certifier = Certifier()
    certifier.certify(request(make_writeset([("t", 1)]), start=0))
    certifier.certify(request(make_writeset([("t", 1)]), start=0))
    stats = certifier.stats()
    assert stats["requests"] == 2
    assert stats["commits"] == 1
    assert stats["aborts"] == 1
    assert stats["abort_rate"] == pytest.approx(0.5)
