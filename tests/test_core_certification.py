"""Unit tests for the GSI certifier (paper Section 6.1 pseudo-code)."""

import pytest

from repro.core.certification import CertificationDecision, CertificationRequest, Certifier
from repro.core.writeset import WriteSet, make_writeset


def request(writeset, start=0, replica_version=0, replica="replica-0", back_to=None):
    return CertificationRequest(
        tx_start_version=start,
        writeset=writeset,
        replica_version=replica_version,
        origin_replica=replica,
        check_remote_back_to=back_to,
    )


def test_first_update_transaction_commits_at_version_one():
    certifier = Certifier()
    result = certifier.certify(request(make_writeset([("t", 1)])))
    assert result.decision is CertificationDecision.COMMIT
    assert result.tx_commit_version == 1
    assert certifier.system_version.version == 1
    assert certifier.log.last_version == 1


def test_non_conflicting_concurrent_transactions_both_commit():
    certifier = Certifier()
    first = certifier.certify(request(make_writeset([("t", 1)]), start=0))
    second = certifier.certify(request(make_writeset([("t", 2)]), start=0))
    assert first.committed and second.committed
    assert (first.tx_commit_version, second.tx_commit_version) == (1, 2)


def test_conflicting_concurrent_transaction_aborts():
    certifier = Certifier()
    certifier.certify(request(make_writeset([("t", 1)]), start=0))
    conflicting = certifier.certify(request(make_writeset([("t", 1)]), start=0))
    assert conflicting.decision is CertificationDecision.ABORT
    assert conflicting.tx_commit_version is None
    assert conflicting.conflicting_version == 1
    # The abort does not create a version.
    assert certifier.system_version.version == 1


def test_conflict_only_counts_if_committed_after_start_version():
    certifier = Certifier()
    certifier.certify(request(make_writeset([("t", 1)]), start=0))
    # The second transaction started *after* version 1, so it saw that update
    # and does not conflict with it.
    later = certifier.certify(request(make_writeset([("t", 1)]), start=1))
    assert later.committed
    assert later.tx_commit_version == 2


def test_readonly_request_commits_without_creating_a_version():
    certifier = Certifier()
    result = certifier.certify(request(WriteSet()))
    assert result.committed
    assert result.tx_commit_version is None
    assert certifier.system_version.version == 0
    assert certifier.readonly_requests == 1


def test_remote_writesets_cover_exactly_what_the_replica_has_not_seen():
    certifier = Certifier()
    for key in range(1, 5):
        certifier.certify(request(make_writeset([("t", key)]), start=0, replica="replica-A"))
    # A replica at version 2 committing its own transaction gets 3 and 4 back
    # (but not its own new commit version 5).
    result = certifier.certify(
        request(make_writeset([("x", 1)]), start=2, replica_version=2, replica="replica-B")
    )
    assert result.committed and result.tx_commit_version == 5
    assert [info.commit_version for info in result.remote_writesets] == [3, 4]


def test_aborted_request_still_receives_remote_writesets():
    certifier = Certifier()
    certifier.certify(request(make_writeset([("t", 1)]), start=0))
    result = certifier.certify(request(make_writeset([("t", 1)]), start=0, replica_version=0))
    assert not result.committed
    assert [info.commit_version for info in result.remote_writesets] == [1]


def test_forced_abort_rate_injects_aborts_after_certification():
    # A chooser that always returns 0.0 forces every certifiable request to abort.
    certifier = Certifier(forced_abort_rate=0.3, abort_chooser=lambda: 0.0)
    result = certifier.certify(request(make_writeset([("t", 1)])))
    assert not result.committed
    assert result.forced_abort
    assert certifier.forced_aborts == 1
    # Forced aborts never hide genuine conflicts statistics.
    assert certifier.aborts == 1


def test_forced_abort_disabled_without_chooser():
    certifier = Certifier(forced_abort_rate=0.9)
    result = certifier.certify(request(make_writeset([("t", 1)])))
    assert result.committed


def test_fetch_remote_writesets_for_staleness_refresh():
    certifier = Certifier()
    for key in range(3):
        certifier.certify(request(make_writeset([("t", key)]), start=key))
    remote = certifier.fetch_remote_writesets(1)
    assert [info.commit_version for info in remote] == [2, 3]


def test_extended_certification_reports_conflict_free_horizon():
    certifier = Certifier()
    certifier.certify(request(make_writeset([("t", 1)]), start=0, replica="A"))
    certifier.certify(request(make_writeset([("t", 2)]), start=1, replica="A"))
    # Replica B at version 0 asks for remote writesets checked back to 0.
    result = certifier.certify(
        request(make_writeset([("x", 9)]), start=0, replica_version=0, replica="B", back_to=0)
    )
    horizons = {info.commit_version: info.conflict_free_back_to for info in result.remote_writesets}
    # Writeset 1 and 2 do not conflict with anything back to version 0.
    assert horizons[1] == 0
    assert horizons[2] == 0


def test_extended_certification_keeps_horizon_when_conflict_found():
    certifier = Certifier()
    certifier.certify(request(make_writeset([("t", 1)]), start=0, replica="A"))
    # Version 2 conflicts with version 1 but was certified only back to 1.
    certifier.certify(request(make_writeset([("t", 1)]), start=1, replica="A"))
    result = certifier.certify(
        request(make_writeset([("x", 9)]), start=0, replica_version=0, replica="B", back_to=0)
    )
    horizons = {info.commit_version: info.conflict_free_back_to for info in result.remote_writesets}
    assert horizons[2] >= 1  # cannot be vouched for back to 0


def test_stats_snapshot_counts_requests_and_rate():
    certifier = Certifier()
    certifier.certify(request(make_writeset([("t", 1)]), start=0))
    certifier.certify(request(make_writeset([("t", 1)]), start=0))
    stats = certifier.stats()
    assert stats["requests"] == 2
    assert stats["commits"] == 1
    assert stats["aborts"] == 1
    assert stats["abort_rate"] == pytest.approx(0.5)


# -- log garbage collection (low-water-mark protocol) -------------------------


def _fill(certifier, n, replica="replica-A"):
    for key in range(n):
        start = certifier.system_version.version
        result = certifier.certify(
            request(make_writeset([("t", f"gc-{key}")]), start=start,
                    replica_version=start, replica=replica)
        )
        assert result.committed


def test_low_water_mark_tracks_minimum_replica_version():
    certifier = Certifier()
    assert certifier.low_water_mark() is None
    certifier.note_replica_version("A", 5)
    certifier.note_replica_version("B", 3)
    assert certifier.low_water_mark() == 3
    certifier.note_replica_version("B", 1)  # stale report never regresses
    assert certifier.low_water_mark() == 3
    certifier.forget_replica("B")
    assert certifier.low_water_mark() == 5


def test_certify_feeds_replica_watermarks():
    certifier = Certifier()
    _fill(certifier, 3, replica="A")
    # The last request reported replica_version 2 (version before commit 3).
    assert certifier.low_water_mark() == 2


def test_collect_garbage_prunes_durable_prefix_below_low_water():
    certifier = Certifier()
    _fill(certifier, 10)
    certifier.log.mark_durable(10)
    certifier.note_replica_version("replica-A", 10)
    pruned = certifier.collect_garbage(headroom=4)
    assert pruned == 6
    assert certifier.log.pruned_version == 6
    assert certifier.log.last_version == 10
    assert certifier.stats()["gc_runs"] == 1
    # Certification continues seamlessly above the horizon.
    # gc-9 was written by commit version 10, above the snapshot at 8.
    result = certifier.certify(
        request(make_writeset([("t", "gc-9")]), start=8, replica_version=10)
    )
    assert not result.committed
    assert result.conflicting_version == 10


def test_collect_garbage_waits_for_durability_and_reports():
    certifier = Certifier()
    _fill(certifier, 8)
    certifier.note_replica_version("replica-A", 8)
    assert certifier.collect_garbage() == 0  # nothing durable yet
    certifier.log.mark_durable(5)
    assert certifier.collect_garbage() == 5  # clamped to the durable horizon


def test_snapshot_below_gc_horizon_aborts_conservatively():
    certifier = Certifier()
    _fill(certifier, 10)
    certifier.log.mark_durable(10)
    certifier.note_replica_version("replica-A", 10)
    certifier.collect_garbage()
    assert certifier.log.pruned_version == 10
    # A fresh, conflict-free writeset whose snapshot predates the horizon is
    # aborted ("snapshot too old") rather than risking a missed conflict.
    result = certifier.certify(
        request(make_writeset([("t", "fresh")]), start=3, replica_version=10)
    )
    assert not result.committed
    assert certifier.snapshot_too_old_aborts == 1
    # The same writeset at a current snapshot commits.
    result = certifier.certify(
        request(make_writeset([("t", "fresh")]), start=10, replica_version=10)
    )
    assert result.committed


def test_delayed_request_below_gc_horizon_is_served_not_crashed():
    """Regression: a request whose replica_version predates the GC horizon.

    The replica's newer reports advanced the watermark past its delayed
    request, so GC pruned below the request's view.  The certifier must
    serve the retained suffix (the replica provably applied the pruned
    prefix) instead of raising LogPrunedError.
    """
    certifier = Certifier()
    _fill(certifier, 10)
    certifier.log.mark_durable(10)
    certifier.note_replica_version("replica-A", 10)
    certifier.collect_garbage()
    assert certifier.log.pruned_version == 10
    # Delayed request: snapshot and replica view from before the horizon,
    # but replica-A's watermark (10) proves it already has the prefix.
    result = certifier.certify(
        request(make_writeset([("t", "late")]), start=2, replica_version=2,
                replica="replica-A")
    )
    assert not result.committed  # conservative snapshot-too-old abort
    assert result.remote_writesets == []  # nothing retained after version 10
    # A delayed refresh from the same replica is equally safe.
    assert certifier.fetch_remote_writesets(3, replica="replica-A") == []
    _fill(certifier, 2)
    remote = certifier.fetch_remote_writesets(3, replica="replica-A")
    assert [info.commit_version for info in remote] == [11, 12]


def test_unknown_replica_below_gc_horizon_fails_loudly():
    """A requester that never caught up must not silently skip pruned records.

    Serving a below-horizon view to a replica whose own watermark never
    reached the horizon would create a permanent gap in its writeset stream
    (silent divergence); the certifier refuses with LogPrunedError so the
    replica bootstraps from a dump / state transfer instead.
    """
    from repro.errors import LogPrunedError

    certifier = Certifier()
    _fill(certifier, 10)
    certifier.log.mark_durable(10)
    certifier.note_replica_version("replica-A", 10)
    certifier.collect_garbage()
    assert certifier.log.pruned_version == 10
    # A brand-new replica attaching at version 0:
    with pytest.raises(LogPrunedError):
        certifier.fetch_remote_writesets(0, replica="replica-new")
    with pytest.raises(LogPrunedError):
        certifier.certify(
            request(make_writeset([("t", "x")]), start=0, replica_version=0,
                    replica="replica-new")
        )
    # Anonymous refreshes below the horizon are refused too.
    with pytest.raises(LogPrunedError):
        certifier.fetch_remote_writesets(0)
    # At or above the horizon anyone is served.
    assert certifier.fetch_remote_writesets(10) == []


def test_refused_replica_does_not_pin_the_low_water_mark():
    """Regression: a refused below-horizon request must leave no watermark.

    If the refusal registered the stale version first, the phantom entry
    would cap low_water_mark at 0 and silently disable GC forever.
    """
    from repro.errors import LogPrunedError

    certifier = Certifier()
    _fill(certifier, 10)
    certifier.log.mark_durable(10)
    certifier.note_replica_version("replica-A", 10)
    certifier.collect_garbage()
    with pytest.raises(LogPrunedError):
        certifier.fetch_remote_writesets(0, replica="replica-new")
    with pytest.raises(LogPrunedError):
        certifier.certify(
            request(make_writeset([("t", "x")]), start=0, replica_version=0,
                    replica="replica-new")
        )
    assert "replica-new" not in certifier._replica_versions
    assert certifier.low_water_mark() == 10  # GC still unblocked
    _fill(certifier, 3)
    certifier.log.mark_durable(certifier.log.last_version)
    assert certifier.collect_garbage() > 0


def test_refusal_happens_before_any_log_mutation():
    """Regression: a conflict-free request refused for its remote window
    must not leave a committed record behind (retry would double-commit)."""
    from repro.errors import LogPrunedError

    certifier = Certifier()
    _fill(certifier, 10)
    certifier.log.mark_durable(10)
    certifier.note_replica_version("replica-A", 10)
    certifier.collect_garbage()
    before = (certifier.log.last_version, certifier.commits,
              certifier.certification_requests, certifier.aborts)
    # Conflict-free writeset, current snapshot — but an unserveable
    # remote-writeset window (anonymous requester at version 0).
    with pytest.raises(LogPrunedError):
        certifier.certify(CertificationRequest(
            tx_start_version=10,
            writeset=make_writeset([("t", "fresh")]),
            replica_version=0,
        ))
    after = (certifier.log.last_version, certifier.commits,
             certifier.certification_requests, certifier.aborts)
    assert after == before  # nothing appended, nothing counted
    # The identical transaction retried with a sane window commits once.
    result = certifier.certify(CertificationRequest(
        tx_start_version=10,
        writeset=make_writeset([("t", "fresh")]),
        replica_version=10,
    ))
    assert result.committed and result.tx_commit_version == 11


def test_anonymous_requests_never_join_the_gc_protocol():
    """Regression: the old origin_replica default registered a phantom
    'replica-0' whose frozen watermark capped GC forever."""
    certifier = Certifier()
    for i in range(5):
        start = certifier.system_version.version
        result = certifier.certify(CertificationRequest(
            tx_start_version=start,
            writeset=make_writeset([("t", i)]),
            replica_version=start,
        ))
        assert result.committed
    assert certifier.low_water_mark() is None  # nobody enrolled
    certifier.note_replica_version("real", 5)
    assert certifier.low_water_mark() == 5  # phantom would have capped at 0
