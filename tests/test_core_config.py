"""Unit tests for configuration objects and their validation."""

import pytest

from repro.core.config import (
    DiskConfig,
    NetworkConfig,
    ReplicationConfig,
    SystemKind,
    WorkloadName,
    WRITESET_SIZE_BYTES,
)
from repro.errors import ConfigurationError


def test_system_kind_durability_placement_matches_paper():
    assert SystemKind.BASE.durability_in_database
    assert SystemKind.BASE.durability_in_certifier
    assert not SystemKind.TASHKENT_MW.durability_in_database
    assert SystemKind.TASHKENT_MW.durability_in_certifier
    assert SystemKind.TASHKENT_API.durability_in_database
    assert SystemKind.TASHKENT_API.durability_in_certifier
    assert not SystemKind.TASHKENT_API_NO_CERT.durability_in_certifier
    assert SystemKind.STANDALONE.durability_in_database
    assert not SystemKind.STANDALONE.durability_in_certifier


def test_only_api_variants_support_ordered_commit():
    assert SystemKind.TASHKENT_API.supports_ordered_commit
    assert SystemKind.TASHKENT_API_NO_CERT.supports_ordered_commit
    assert not SystemKind.BASE.supports_ordered_commit
    assert not SystemKind.TASHKENT_MW.supports_ordered_commit


def test_writeset_sizes_match_paper_constants():
    assert WRITESET_SIZE_BYTES[WorkloadName.ALL_UPDATES] == 54
    assert WRITESET_SIZE_BYTES[WorkloadName.TPC_B] == 158
    assert WRITESET_SIZE_BYTES[WorkloadName.TPC_W] == 275


def test_disk_config_defaults_match_paper_fsync():
    disk = DiskConfig()
    assert disk.fsync_mean_ms == pytest.approx(8.0)
    assert disk.fsync_min_ms == pytest.approx(6.0)
    assert disk.fsync_max_ms == pytest.approx(12.0)
    assert not disk.dedicated_log_channel


def test_disk_config_validation():
    with pytest.raises(ConfigurationError):
        DiskConfig(fsync_min_ms=0)
    with pytest.raises(ConfigurationError):
        DiskConfig(fsync_mean_ms=20.0)
    with pytest.raises(ConfigurationError):
        DiskConfig(shared_channel_interference_ms=-1)


def test_network_config_message_delay_scales_with_size():
    net = NetworkConfig()
    small = net.message_delay_ms(64)
    large = net.message_delay_ms(64 * 1024)
    assert large > small > 0
    with pytest.raises(ConfigurationError):
        NetworkConfig(one_way_latency_ms=-1)


def test_replication_config_validation_and_majority():
    config = ReplicationConfig(num_replicas=4, num_certifiers=3)
    assert config.certifier_majority == 2
    with pytest.raises(ConfigurationError):
        ReplicationConfig(num_replicas=0)
    with pytest.raises(ConfigurationError):
        ReplicationConfig(forced_abort_rate=1.5)
    with pytest.raises(ConfigurationError):
        ReplicationConfig(clients_per_replica=0)
    with pytest.raises(ConfigurationError):
        ReplicationConfig(staleness_bound_ms=0)


def test_replication_config_with_helpers_preserve_other_fields():
    config = ReplicationConfig(num_replicas=3, forced_abort_rate=0.2)
    as_base = config.with_system(SystemKind.BASE)
    assert as_base.system is SystemKind.BASE
    assert as_base.num_replicas == 3
    assert as_base.forced_abort_rate == pytest.approx(0.2)
    wider = config.with_replicas(10)
    assert wider.num_replicas == 10
    assert wider.system is config.system
