"""Tests for checkpoints, crash simulation and engine recovery."""

import pytest

from repro.core.writeset import make_writeset
from repro.engine.checkpoint import Checkpoint, CheckpointStore
from repro.engine.database import Database
from repro.engine.recovery import recover_from_checkpoint, recover_from_wal, verify_same_state
from repro.errors import RecoveryError


def build_db(sync=True):
    db = Database("bank", synchronous_commit=sync)
    db.create_table("accounts", ["id", "balance"])
    txn = db.begin()
    for i in range(5):
        db.insert(txn, "accounts", i, id=i, balance=10 * i)
    db.commit(txn)
    return db


# ----------------------------------------------------------------- checkpoints

def test_checkpoint_capture_validate_and_restore():
    db = build_db()
    checkpoint = db.dump()
    checkpoint.validate()
    assert checkpoint.version == db.current_version
    assert checkpoint.row_count() == 5
    restored = Database.restore(checkpoint)
    assert verify_same_state(db, restored)
    assert restored.current_version == db.current_version


def test_corrupt_checkpoint_detected():
    db = build_db()
    broken = db.dump().corrupted_copy()
    with pytest.raises(RecoveryError):
        broken.validate()
    with pytest.raises(RecoveryError):
        Database.restore(broken)


def test_checkpoint_store_keeps_two_copies_and_falls_back():
    store = CheckpointStore()
    db = build_db()
    first = db.dump()
    store.add(first)
    txn = db.begin()
    db.update(txn, "accounts", 0, balance=999)
    db.commit(txn)
    second = db.dump()
    store.add(second.corrupted_copy())  # crashed while dumping the second copy
    assert len(store) == 2
    assert store.latest_valid() is first
    store.add(db.dump())
    assert len(store) == 2  # only two copies are ever retained


def test_checkpoint_store_with_no_valid_copy_raises():
    store = CheckpointStore()
    db = build_db()
    store.add(db.dump().corrupted_copy())
    with pytest.raises(RecoveryError):
        store.latest_valid()


# ----------------------------------------------------------------- WAL recovery (Base / Tashkent-API)

def test_wal_recovery_replays_all_durable_commits():
    db = build_db(sync=True)
    for i in range(3):
        txn = db.begin()
        db.update(txn, "accounts", i, balance=1000 + i)
        db.commit(txn)
    schemas = [table.schema for table in db.tables.values()]
    db.simulate_crash()
    recovered = recover_from_wal(db.wal, schemas, database_name="bank")
    assert recovered.current_version == db.current_version
    fresh = recovered.begin()
    assert recovered.read(fresh, "accounts", 2)["balance"] == 1002


def test_wal_recovery_loses_unflushed_commits_when_async():
    db = build_db(sync=True)
    db.set_synchronous_commit(False)
    txn = db.begin()
    db.update(txn, "accounts", 0, balance=12345)
    db.commit(txn)  # not flushed
    schemas = [table.schema for table in db.tables.values()]
    lost = db.simulate_crash()
    assert lost == 1
    recovered = recover_from_wal(db.wal, schemas)
    fresh = recovered.begin()
    # The unflushed commit is gone: this is exactly why Tashkent-MW needs the
    # certifier log for durability.
    assert recovered.read(fresh, "accounts", 0)["balance"] == 0


def test_wal_recovery_from_checkpoint_plus_suffix():
    db = build_db(sync=True)
    checkpoint = db.dump()
    txn = db.begin()
    db.update(txn, "accounts", 4, balance=7)
    db.commit(txn)
    schemas = [table.schema for table in db.tables.values()]
    recovered = recover_from_wal(db.wal, schemas, base_checkpoint=checkpoint)
    assert verify_same_state(db, recovered)


# ----------------------------------------------------------------- checkpoint recovery (Tashkent-MW)

def test_checkpoint_recovery_uses_latest_valid_dump():
    db = build_db(sync=False)
    store = CheckpointStore()
    store.add(db.dump())
    txn = db.begin()
    db.update(txn, "accounts", 1, balance=77)
    db.commit(txn)
    store.add(db.dump())
    recovered = recover_from_checkpoint(store)
    assert recovered.current_version == db.current_version
    fresh = recovered.begin()
    assert recovered.read(fresh, "accounts", 1)["balance"] == 77
    assert recovered.synchronous_commit is False


def test_verify_same_state_detects_divergence():
    a = build_db()
    b = build_db()
    assert verify_same_state(a, b)
    txn = b.begin()
    b.update(txn, "accounts", 0, balance=1)
    b.commit(txn)
    assert not verify_same_state(a, b)


def test_crash_aborts_active_transactions():
    db = build_db()
    txn = db.begin()
    db.update(txn, "accounts", 0, balance=5)
    db.simulate_crash()
    assert txn.status.value == "aborted"
    assert db.active_transactions() == []
