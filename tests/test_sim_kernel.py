"""Tests for the discrete-event simulation kernel, resources and devices."""

import pytest

from repro.core.config import DiskConfig, NetworkConfig
from repro.errors import SimulationError
from repro.sim.devices import CpuServer, DiskChannel, NetworkLink
from repro.sim.kernel import Environment
from repro.sim.metrics import MetricsCollector, TransactionRecord
from repro.sim.resources import Resource, Store
from repro.sim.rng import RandomStreams


# ----------------------------------------------------------------- kernel

def test_timeout_advances_virtual_time():
    env = Environment()
    times = []

    def proc(env):
        yield env.timeout(5)
        times.append(env.now)
        yield env.timeout(2.5)
        times.append(env.now)

    env.process(proc(env))
    env.run_until(100)
    assert times == [5, 7.5]
    assert env.now == 100


def test_processes_wait_on_each_other():
    env = Environment()

    def child(env):
        yield env.timeout(3)
        return "child-result"

    results = []

    def parent(env):
        value = yield env.process(child(env), "child")
        results.append((value, env.now))

    env.process(parent(env), "parent")
    env.run_until(10)
    assert results == [("child-result", 3)]


def test_all_of_waits_for_every_event():
    env = Environment()
    seen = []

    def proc(env):
        values = yield env.all_of([env.timeout(2, "a"), env.timeout(5, "b")])
        seen.append((values, env.now))

    env.process(proc(env))
    env.run_until(10)
    assert seen == [(["a", "b"], 5)]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_yielding_non_event_crashes_the_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env), "bad")
    env.run_until(1)
    assert len(env.failed_processes) == 1


def test_run_until_complete_detects_deadlock():
    env = Environment()

    def stuck(env):
        yield env.event()  # never triggered

    process = env.process(stuck(env), "stuck")
    with pytest.raises(SimulationError):
        env.run_until_complete(process)


def test_determinism_same_seed_same_schedule():
    def run():
        env = Environment()
        rng = RandomStreams(99)
        disk = DiskChannel(env, DiskConfig(), rng)
        finished = []

        def worker(env, disk, name):
            for _ in range(5):
                yield from disk.fsync()
            finished.append((name, env.now))

        env.process(worker(env, disk, "a"))
        env.process(worker(env, disk, "b"))
        env.run_until(1000)
        return finished

    assert run() == run()


# ----------------------------------------------------------------- resources

def test_resource_fifo_and_utilization():
    env = Environment()
    resource = Resource(env, capacity=1)
    order = []

    def worker(env, resource, name, hold):
        yield resource.request()
        order.append((name, env.now))
        yield env.timeout(hold)
        resource.release()

    env.process(worker(env, resource, "a", 4))
    env.process(worker(env, resource, "b", 4))
    env.run_until(20)
    assert [name for name, _ in order] == ["a", "b"]
    assert order[1][1] == 4  # b waited for a
    assert resource.utilization(8) == pytest.approx(1.0)


def test_resource_release_when_idle_is_an_error():
    env = Environment()
    resource = Resource(env)
    with pytest.raises(SimulationError):
        resource.release()


def test_store_put_get_order_and_get_all():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    got = []

    def consumer(env, store):
        got.append((yield store.get()))
        got.append((yield store.get()))

    env.process(consumer(env, store))
    env.run_until(1)
    assert got == [1, 2]
    store.put(3)
    store.put(4)
    assert store.get_all() == [3, 4]
    assert store.pending == 0


# ----------------------------------------------------------------- devices

def test_disk_channel_service_times_within_bounds():
    env = Environment()
    disk = DiskChannel(env, DiskConfig(), RandomStreams(1))
    durations = []

    def proc(env, disk):
        for _ in range(20):
            start = env.now
            yield from disk.fsync()
            durations.append(env.now - start)

    env.process(proc(env, disk))
    env.run_until(10_000)
    assert disk.fsync_count == 20
    assert all(6.0 <= d <= 12.0 + 1e-9 for d in durations)
    assert 6.0 <= disk.mean_service_ms <= 12.0


def test_dedicated_channel_ignores_interference():
    env = Environment()
    shared = DiskChannel(env, DiskConfig(dedicated_log_channel=False), RandomStreams(1),
                         name="shared", page_io_interference_ms=50.0)
    dedicated = DiskChannel(env, DiskConfig(dedicated_log_channel=True), RandomStreams(1),
                            name="dedicated", page_io_interference_ms=50.0)
    assert shared.page_io_interference_ms == 50.0
    assert dedicated.page_io_interference_ms == 0.0


def test_cpu_server_serialises_jobs():
    env = Environment()
    cpu = CpuServer(env)
    done = []

    def worker(env, cpu, name):
        yield from cpu.execute(10)
        done.append((name, env.now))

    env.process(worker(env, cpu, "a"))
    env.process(worker(env, cpu, "b"))
    env.run_until(100)
    assert done == [("a", 10), ("b", 20)]
    assert cpu.jobs == 2


def test_network_link_delay_scales_with_size():
    env = Environment()
    net = NetworkLink(env, NetworkConfig(jitter_ms=0.0), RandomStreams(1))
    arrivals = []

    def proc(env, net):
        yield net.transfer(1024)
        arrivals.append(env.now)
        yield net.transfer(1024 * 1024)
        arrivals.append(env.now)

    env.process(proc(env, net))
    env.run_until(100)
    assert arrivals[0] < arrivals[1] - arrivals[0]
    assert net.messages == 2


# ----------------------------------------------------------------- metrics

def test_metrics_collector_window_and_summary():
    metrics = MetricsCollector(warmup_ms=100, measure_ms=1000)
    metrics.record(TransactionRecord(0, 50, True, False, "r0"))       # warm-up: ignored
    metrics.record(TransactionRecord(150, 200, True, False, "r0"))
    metrics.record(TransactionRecord(150, 250, True, True, "r1"))
    metrics.record(TransactionRecord(300, 400, False, False, "r0"))   # aborted
    metrics.record(TransactionRecord(1200, 1300, True, False, "r0"))  # after window
    assert metrics.ignored_warmup == 2
    assert metrics.count(committed=True) == 2
    assert metrics.goodput_tps() == pytest.approx(2.0)
    assert metrics.offered_tps() == pytest.approx(3.0)
    assert metrics.abort_rate() == pytest.approx(1 / 3)
    assert metrics.mean_response_ms() == pytest.approx(75.0)
    assert metrics.mean_response_ms(readonly=True) == pytest.approx(100.0)
    assert metrics.per_replica_throughput()["r0"] == pytest.approx(1.0)
    summary = metrics.summary()
    assert summary["completed"] == 3.0
    assert metrics.percentile_response_ms(95.0) >= metrics.percentile_response_ms(5.0)
