"""Unit tests for the cluster scheduler and its routing policies.

Covers the edge cases the docs promise: routing with a single replica,
every replica at its multiprogramming limit (queueing, promotion order and
deadline expiry), the bounded queue shedding load, and a replica
disconnecting mid-route with fall-back to a healthy one.
"""

from __future__ import annotations

import pytest

from repro.balancer import (
    ClusterScheduler,
    ConflictAwarePolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    RoutingRequest,
    StalenessAwarePolicy,
    TicketState,
    routing_policy_from_name,
)
from repro.balancer.policies import ReplicaView
from repro.errors import (
    AdmissionTimeoutError,
    ConfigurationError,
    NoHealthyReplicaError,
    SchedulerSaturatedError,
)


def make_scheduler(num_replicas=3, policy="least-loaded", **kwargs):
    scheduler = ClusterScheduler(routing_policy_from_name(policy), **kwargs)
    for index in range(num_replicas):
        scheduler.add_replica(f"replica-{index}")
    return scheduler


def views(*in_flight, applied=None, lag=None):
    applied = applied or [0] * len(in_flight)
    lag = lag or [0] * len(in_flight)
    return [
        ReplicaView(index=i, name=f"replica-{i}", in_flight=in_flight[i],
                    applied_version=applied[i], lag=lag[i])
        for i in range(len(in_flight))
    ]


# ---------------------------------------------------------------------- policies


def test_round_robin_cycles_over_candidates():
    policy = RoundRobinPolicy()
    request = RoutingRequest()
    firsts = [policy.rank(request, views(0, 0, 0))[0] for _ in range(6)]
    assert firsts == [0, 1, 2, 0, 1, 2]


def test_least_loaded_prefers_min_in_flight():
    policy = LeastLoadedPolicy()
    order = policy.rank(RoutingRequest(), views(3, 0, 1))
    assert order == [1, 2, 0]


def test_staleness_aware_prefers_freshest_applied_version():
    policy = StalenessAwarePolicy()
    order = policy.rank(RoutingRequest(), views(0, 0, 0, applied=[5, 9, 7]))
    assert order == [1, 2, 0]
    # Applied-version ties break on propagation lag.
    order = policy.rank(RoutingRequest(), views(0, 0, applied=[5, 5], lag=[4, 1]))
    assert order == [1, 0]


def test_conflict_aware_groups_overlapping_writers():
    policy = ConflictAwarePolicy()
    first = RoutingRequest(client="a", item_ids=frozenset({("t", 1), ("t", 2)}))
    # No affinity yet: degrades to least-loaded.
    assert policy.rank(first, views(1, 0, 0))[0] == 1
    policy.note_routed(first, 1)
    # A writer overlapping {t:2} now prefers replica 1 despite its load.
    overlap = RoutingRequest(client="b", item_ids=frozenset({("t", 2), ("t", 3)}))
    assert policy.rank(overlap, views(0, 2, 0))[0] == 1
    # Disjoint writers ignore the affinity and spread by load.
    disjoint = RoutingRequest(client="c", item_ids=frozenset({("t", 99)}))
    assert policy.rank(disjoint, views(0, 2, 0))[0] == 0


def test_conflict_aware_load_slack_guards_against_herding():
    policy = ConflictAwarePolicy(load_slack=2)
    seed = RoutingRequest(client="a", item_ids=frozenset({("t", 1)}))
    policy.note_routed(seed, 0)
    hot = RoutingRequest(client="b", item_ids=frozenset({("t", 1)}))
    # Affinity wins while replica 0 is within the slack...
    assert policy.rank(hot, views(2, 0, 0))[0] == 0
    # ...but forfeits once the imbalance exceeds it.
    assert policy.rank(hot, views(5, 0, 0))[0] == 1


def test_conflict_aware_affinity_map_is_bounded():
    policy = ConflictAwarePolicy(max_tracked_items=4)
    for key in range(10):
        policy.note_routed(
            RoutingRequest(item_ids=frozenset({("t", key)})), key % 3
        )
    assert policy.tracked_items <= 4


def test_policy_factory_rejects_unknown_names():
    with pytest.raises(ConfigurationError):
        routing_policy_from_name("coin-flip")


# ------------------------------------------------------------------- single replica


@pytest.mark.parametrize("policy", ["round-robin", "least-loaded",
                                    "staleness-aware", "conflict-aware"])
def test_single_replica_routes_everything_to_it(policy):
    scheduler = make_scheduler(num_replicas=1, policy=policy)
    for i in range(5):
        ticket = scheduler.submit(RoutingRequest(client=f"c{i}"))
        assert ticket.admitted and ticket.replica_index == 0
    assert scheduler.endpoints[0].in_flight == 5


def test_single_replica_at_limit_queues_and_times_out():
    scheduler = make_scheduler(num_replicas=1, multiprogramming_limit=1,
                               queue_timeout_ms=10.0)
    first = scheduler.submit(RoutingRequest(client="a"), now=0.0)
    assert first.admitted
    waiter = scheduler.submit(RoutingRequest(client="b"), now=1.0)
    assert waiter.state is TicketState.QUEUED
    expired = scheduler.expire_waiters(now=20.0)
    assert expired == [waiter] and waiter.state is TicketState.TIMED_OUT
    assert scheduler.stats.admission_timeouts == 1


# ---------------------------------------------------------------- admission control


def test_all_replicas_at_limit_queue_then_promote_fifo():
    scheduler = make_scheduler(num_replicas=2, multiprogramming_limit=1)
    running = [scheduler.submit(RoutingRequest(client=f"r{i}")) for i in range(2)]
    waiters = [scheduler.submit(RoutingRequest(client=f"w{i}"), now=float(i))
               for i in range(3)]
    assert all(t.state is TicketState.QUEUED for t in waiters)
    assert scheduler.queue_depth == 3

    admitted_callbacks = []
    waiters[0].on_admit = admitted_callbacks.append

    promoted = scheduler.release(running[0], now=5.0)
    assert promoted == [waiters[0]]
    assert waiters[0].admitted and waiters[0].replica_index == running[0].replica_index
    assert waiters[0].queue_wait_ms == 5.0
    assert admitted_callbacks == [waiters[0]]
    # The later waiters stay queued until more capacity frees.
    assert waiters[1].state is TicketState.QUEUED and scheduler.queue_depth == 2


def test_bounded_queue_sheds_load():
    scheduler = make_scheduler(num_replicas=1, multiprogramming_limit=1,
                               max_queue_depth=1)
    scheduler.submit(RoutingRequest(client="runs"))
    scheduler.submit(RoutingRequest(client="waits"))
    with pytest.raises(SchedulerSaturatedError):
        scheduler.submit(RoutingRequest(client="shed"))
    assert scheduler.stats.saturation_rejections == 1


def test_release_expires_stale_waiters_before_promoting():
    scheduler = make_scheduler(num_replicas=1, multiprogramming_limit=1,
                               queue_timeout_ms=10.0)
    running = scheduler.submit(RoutingRequest(client="runs"), now=0.0)
    stale = scheduler.submit(RoutingRequest(client="stale"), now=0.0)
    fresh = scheduler.submit(RoutingRequest(client="fresh"), now=8.0)
    promoted = scheduler.release(running, now=15.0)
    assert stale.state is TicketState.TIMED_OUT
    assert promoted == [fresh] and fresh.admitted


def test_queue_false_raises_instead_of_queueing():
    scheduler = make_scheduler(num_replicas=1, multiprogramming_limit=1)
    scheduler.submit(RoutingRequest(client="runs"))
    with pytest.raises(AdmissionTimeoutError):
        scheduler.submit(RoutingRequest(client="impatient"), queue=False)


def test_promotion_at_exactly_the_deadline_wins():
    scheduler = make_scheduler(num_replicas=1, multiprogramming_limit=1,
                               queue_timeout_ms=10.0)
    running = scheduler.submit(RoutingRequest(client="runs"), now=0.0)
    waiter = scheduler.submit(RoutingRequest(client="waits"), now=0.0)
    # The slot frees at the waiter's deadline: promote, don't expire.
    promoted = scheduler.release(running, now=10.0)
    assert promoted == [waiter] and waiter.admitted
    assert scheduler.stats.admission_timeouts == 0


def test_give_up_buckets_timeouts_apart_from_cancellations():
    scheduler = make_scheduler(num_replicas=1, multiprogramming_limit=1,
                               queue_timeout_ms=10.0)
    scheduler.submit(RoutingRequest(client="runs"), now=0.0)
    early = scheduler.submit(RoutingRequest(client="early"), now=0.0)
    late = scheduler.submit(RoutingRequest(client="late"), now=0.0)
    scheduler.give_up(early, now=3.0)     # withdrew before the deadline
    scheduler.give_up(late, now=10.0)     # deadline reached while waiting
    assert early.state is TicketState.CANCELLED
    assert late.state is TicketState.TIMED_OUT
    assert scheduler.stats.cancelled == 1
    assert scheduler.stats.admission_timeouts == 1


def test_cancel_withdraws_a_queued_ticket():
    scheduler = make_scheduler(num_replicas=1, multiprogramming_limit=1)
    running = scheduler.submit(RoutingRequest(client="runs"))
    waiter = scheduler.submit(RoutingRequest(client="waits"))
    scheduler.cancel(waiter)
    assert waiter.state is TicketState.CANCELLED and scheduler.queue_depth == 0
    # A cancelled ticket is never promoted.
    assert scheduler.release(running) == []


def test_release_is_idempotent_and_ignores_unadmitted_tickets():
    scheduler = make_scheduler(num_replicas=1)
    ticket = scheduler.submit(RoutingRequest(client="a"))
    scheduler.release(ticket)
    scheduler.release(ticket)
    assert scheduler.endpoints[0].in_flight == 0


# ------------------------------------------------------------------ health / failover


def test_unhealthy_replicas_are_skipped():
    scheduler = make_scheduler(num_replicas=3, policy="round-robin")
    scheduler.mark_down(0)
    targets = {scheduler.submit(RoutingRequest()).replica_index for _ in range(6)}
    assert targets == {1, 2}


def test_all_replicas_down_raises():
    scheduler = make_scheduler(num_replicas=2)
    scheduler.mark_down(0)
    scheduler.mark_down(1)
    with pytest.raises(NoHealthyReplicaError):
        scheduler.submit(RoutingRequest())


def test_disconnect_mid_route_fails_over_to_a_healthy_replica():
    scheduler = make_scheduler(num_replicas=2, policy="conflict-aware")
    request = RoutingRequest(client="a", item_ids=frozenset({("t", 1)}))
    ticket = scheduler.submit(request)
    dead = ticket.replica_index
    scheduler.mark_down(dead)
    scheduler.fail_over(ticket)
    assert ticket.admitted and ticket.replica_index != dead
    # The dead replica's slot was freed; only the new replica holds one.
    assert scheduler.endpoints[dead].in_flight == 0
    assert scheduler.endpoints[ticket.replica_index].in_flight == 1
    assert scheduler.stats.failovers == 1


def test_mark_down_drops_conflict_affinities_for_that_replica():
    policy = ConflictAwarePolicy()
    scheduler = ClusterScheduler(policy)
    for index in range(2):
        scheduler.add_replica(f"replica-{index}")
    request = RoutingRequest(client="a", item_ids=frozenset({("t", 1)}))
    ticket = scheduler.submit(request)
    assert policy.tracked_items == 1
    scheduler.mark_down(ticket.replica_index)
    assert policy.tracked_items == 0


def test_mark_up_promotes_queued_waiters():
    scheduler = make_scheduler(num_replicas=2, multiprogramming_limit=1)
    scheduler.mark_down(1)
    scheduler.submit(RoutingRequest(client="runs"))
    waiter = scheduler.submit(RoutingRequest(client="waits"))
    promoted = scheduler.mark_up(1)
    assert promoted == [waiter]
    assert waiter.admitted and waiter.replica_index == 1


# ---------------------------------------------------------------------- diagnostics


def test_snapshot_reports_live_signals_and_stats():
    scheduler = ClusterScheduler(routing_policy_from_name("staleness-aware"))
    scheduler.add_replica("replica-0", applied_version=lambda: 42, lag=lambda: 3)
    scheduler.submit(RoutingRequest())
    snapshot = scheduler.snapshot()
    assert snapshot["policy"] == "staleness-aware"
    replica = snapshot["replicas"][0]
    assert replica["applied_version"] == 42 and replica["lag"] == 3
    assert replica["in_flight"] == 1
    assert snapshot["stats"]["admitted_immediately"] == 1


def test_configuration_validation():
    with pytest.raises(ConfigurationError):
        ClusterScheduler(LeastLoadedPolicy(), multiprogramming_limit=0)
    with pytest.raises(ConfigurationError):
        ClusterScheduler(LeastLoadedPolicy(), queue_timeout_ms=0.0)
    with pytest.raises(ConfigurationError):
        ConflictAwarePolicy(max_tracked_items=0)
