"""Crash-schedule harness for the fault-tolerant sharded certifier.

Crash/recovery code is worthless without systematic fault-injection
coverage, so this module turns the
:class:`~repro.consensus.sharded.ReplicatedShardedCertifier`'s protocol
boundaries into an enumerable schedule: a *crash point* (one of
:data:`CRASH_POINTS`) × a *request index* picks exactly one moment for the
coordinator to die, deterministically — no timing, no randomness inside a
cell.  :func:`run_crash_schedule` then drives an arbitrary workload through
that schedule, recovers, retries the interrupted request the way a real
client would, and checks the recovered deployment against the **fault-free
shards=1 oracle** (the seed :class:`~repro.core.certification.Certifier`):
same decisions, same commit versions, same conflicting versions, same
remote-writeset streams, same replica state, same GC horizon.

The nine crash points and the durable state each one leaves behind:

======================  =====================================================
``pre-probe``           nothing anywhere — the request was never processed
``post-probe``          probes ran (pure); still nothing anywhere
``pre-admit``           global version allocated, volatile only — lost
``mid-admit``           first shard admitted, volatile only — lost
``post-admit``          all shards + directory admitted, volatile only — lost
``pre-flush``           decision reached, no group append yet — lost
``mid-flush``           entry on *some* touched groups — recovery completes
                        the round from the surviving copy
``post-flush``          entry on all touched groups — recovery commits the
                        round; only the acknowledgement was lost
``mid-directory-rebuild``  a second crash during recovery itself — recovery
                        restarts from scratch (it is idempotent)
======================  =====================================================

Log compaction adds three more points (:data:`COMPACT_CRASH_POINTS`:
``pre-compact`` / ``mid-compact`` / ``post-compact``), fired only by
workloads containing a ``("compact",)`` operation — ``mid-compact`` leaves
the shard groups *partially* truncated, the hardest recovery input.

Used by ``tests/test_crash_schedules.py`` (exhaustive small grids plus
Hypothesis-generated workload × schedule cells) and
``tests/test_snapshots.py`` (compaction / bootstrap schedules).
"""

from __future__ import annotations

from repro.consensus.sharded import ReplicatedShardedCertifier
from repro.core.certification import CertificationRequest, Certifier
from repro.core.writeset import make_writeset
from repro.recovery.sharded_recovery import recover_sharded_certifier
from repro.recovery.snapshots import bootstrap_group_node, compact_certifier

#: Every deterministic crash point the harness can schedule.
CRASH_POINTS = (
    "pre-probe",
    "post-probe",
    "pre-admit",
    "mid-admit",
    "post-admit",
    "pre-flush",
    "mid-flush",
    "post-flush",
    "mid-directory-rebuild",
)

#: Crash points inside log compaction (:func:`repro.recovery.snapshots.
#: compact_certifier`).  Kept separate from :data:`CRASH_POINTS` because they
#: only fire on workloads that contain a ``("compact",)`` operation.
COMPACT_CRASH_POINTS = ("pre-compact", "mid-compact", "post-compact")

#: GC headroom used on both sides of the comparison.
GC_HEADROOM = 2


class CertifierCrashed(Exception):
    """Injected coordinator crash (the harness's control-flow signal)."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected coordinator crash at {point}")
        self.point = point


class CrashInjector:
    """Arms one coordinator crash at ``(request_index, point)``; fires once.

    Installed as the certifier's ``crash_hook``; the driver advances
    :attr:`request_index` before each certification request.  A point on the
    commit path never fires for a request that aborts — that cell simply
    degenerates to a fault-free run, which the equivalence check still
    covers.
    """

    def __init__(self, point: str | None, at_request: int) -> None:
        self.point = point
        self.at_request = at_request
        self.request_index = -1
        self.fired = False

    def begin_request(self) -> int:
        self.request_index += 1
        return self.request_index

    def __call__(self, point: str) -> None:
        if (not self.fired and point == self.point
                and self.request_index == self.at_request):
            self.fired = True
            raise CertifierCrashed(point)


def _pick(low: int, high: int, fraction: float) -> int:
    """Deterministically map a unit float onto the inclusive range."""
    if high <= low:
        return low
    return low + round((high - low) * fraction)


def _apply(state: dict, infos, last_seen: int) -> int:
    """Apply fetched remote writesets to a model replica state, asserting
    version order on the way."""
    for info in infos:
        assert info.commit_version > last_seen, "delivery out of version order"
        last_seen = info.commit_version
        for item_id in info.writeset.iter_item_ids():
            state[item_id] = info.commit_version
    return last_seen


def recover_with_schedule(certifier: ReplicatedShardedCertifier,
                          *, rebuild_crash: bool = False):
    """Run recovery; optionally crash it once mid-directory-rebuild first."""
    if rebuild_crash:
        state = {"fired": False}

        def record_hook(_version: int) -> None:
            if not state["fired"]:
                state["fired"] = True
                raise CertifierCrashed("mid-directory-rebuild")

        try:
            recover_sharded_certifier(certifier, record_hook=record_hook)
        except CertifierCrashed:
            pass  # recovery is idempotent: just run it again
    return recover_sharded_certifier(certifier)


def run_crash_schedule(
    operations,
    *,
    shards: int = 2,
    crash_point: str | None = None,
    crash_at_request: int = 0,
    nodes_per_shard: int = 3,
) -> dict:
    """Drive ``operations`` through one crash-schedule cell; assert oracle
    equivalence throughout; return a summary for further assertions.

    ``operations`` is a list of ``("certify", entries, fraction)`` /
    ``("poll",)`` / ``("gc",)`` tuples, where ``entries`` is a list of
    ``(table_index, key)`` pairs and ``fraction`` positions the snapshot
    inside the currently valid window (as in the PR 4 property tests).
    Three further operations exercise the state-transfer subsystem (the
    oracle has no analogue for them — they must be invisible to clients):
    ``("compact",)`` snapshots + truncates the shard group logs (crashable
    at the :data:`COMPACT_CRASH_POINTS`; each compact advances the request
    index, so ``crash_at_request`` addresses compactions too);
    ``("crash_group_node", shard_id, node_id)`` downs one group node; and
    ``("recover_group_node", shard_id, node_id)`` rejoins it via the
    anti-entropy bootstrap path (snapshot + retained suffix).
    """
    rebuild_crash = crash_point == "mid-directory-rebuild"
    primary_point = "post-flush" if rebuild_crash else crash_point
    injector = CrashInjector(primary_point, crash_at_request)
    certifier = ReplicatedShardedCertifier(
        shards, nodes_per_shard=nodes_per_shard, crash_hook=injector)
    oracle = Certifier()

    oracle_state: dict = {}
    sharded_state: dict = {}
    oracle_seen = sharded_seen = 0
    last_client_version = 0
    observer_connected = False
    #: The version the observer last put on the wire (the from-version of its
    #: last fetch).  The certifier's conservative watermark rule notes exactly
    #: this value — NOT the observer's applied frontier, which is only
    #: reported at its *next* contact — so a reconnect after a coordinator
    #: crash must re-feed this, or the recovered certifier's GC low-water mark
    #: runs ahead of the fault-free oracle's and they prune differently.
    observer_reported = 0
    crashes = 0
    commits = 0

    for op in operations:
        kind = op[0]
        if kind == "certify":
            _, entries, fraction = op
            writeset = make_writeset([(f"t{t}", k) for t, k in entries])
            start = _pick(oracle.log.pruned_version,
                          oracle.system_version.version, fraction)
            request_kwargs = dict(
                tx_start_version=start,
                replica_version=oracle.system_version.version,
                origin_replica="client",
            )
            last_client_version = request_kwargs["replica_version"]
            oracle_result = oracle.certify(
                CertificationRequest(writeset=writeset, **request_kwargs))
            if oracle_result.committed and oracle_result.tx_commit_version is not None:
                oracle.log.mark_durable(oracle_result.tx_commit_version)
            tx_id = injector.begin_request()
            request = CertificationRequest(writeset=writeset, **request_kwargs)
            try:
                result = certifier.certify(request, tx_id=tx_id)
            except CertifierCrashed:
                crashes += 1
                certifier.crash()
                recover_with_schedule(certifier, rebuild_crash=rebuild_crash)
                # Reconnect the replicas: each re-reports the version of its
                # last contact, which re-feeds the GC low-water mark (the
                # fault-free oracle only ever heard from replicas that
                # connected, and only their conservative last-reported notes).
                if observer_connected:
                    certifier.note_replica_version("observer", observer_reported)
                certifier.note_replica_version("client", last_client_version)
                # The client retries the interrupted transaction; the
                # exactly-once table answers it if its round survived.
                retry = CertificationRequest(writeset=writeset, **request_kwargs)
                result = certifier.certify(retry, tx_id=tx_id)
            assert result.committed == oracle_result.committed
            assert result.tx_commit_version == oracle_result.tx_commit_version
            assert result.conflicting_version == oracle_result.conflicting_version
            assert ([i.commit_version for i in result.remote_writesets]
                    == [i.commit_version for i in oracle_result.remote_writesets])
            if result.committed:
                commits += 1
        elif kind == "poll":
            if not observer_connected:
                observer_connected = True
                # A fresh observer connecting after GC has pruned cannot tail
                # from version 0 (LogPrunedError): it bootstraps at the
                # horizon — via a dump / state transfer — and tails from there.
                oracle_seen = max(oracle_seen, oracle.log.pruned_version)
                sharded_seen = oracle_seen
            observer_reported = sharded_seen
            oracle_seen = _apply(
                oracle_state,
                oracle.fetch_remote_writesets(oracle_seen, replica="observer"),
                oracle_seen)
            sharded_seen = _apply(
                sharded_state,
                certifier.fetch_remote_writesets(sharded_seen, replica="observer"),
                sharded_seen)
            assert sharded_seen == oracle_seen
        elif kind == "gc":
            oracle.collect_garbage(headroom=GC_HEADROOM)
            certifier.collect_garbage(headroom=GC_HEADROOM)
        elif kind == "compact":
            injector.begin_request()
            try:
                compact_certifier(certifier)
            except CertifierCrashed:
                crashes += 1
                certifier.crash()
                recover_with_schedule(certifier, rebuild_crash=rebuild_crash)
                if observer_connected:
                    certifier.note_replica_version("observer", observer_reported)
                certifier.note_replica_version("client", last_client_version)
                # Compaction is idempotent: the retry finishes whatever
                # shards the crashed attempt left untruncated.
                compact_certifier(certifier)
        elif kind == "crash_group_node":
            _, shard_id, node_id = op
            certifier.groups.crash_node(shard_id, node_id)
        elif kind == "recover_group_node":
            _, shard_id, node_id = op
            report = bootstrap_group_node(certifier.groups, shard_id, node_id)
            assert report.verified, (
                f"bootstrapped node {node_id} of shard {shard_id} did not "
                f"reach its peers' frontier"
            )
        else:  # pragma: no cover - workload generator bug
            raise AssertionError(f"unknown operation {kind!r}")
        core = certifier.core
        assert core is not None
        assert core.system_version.version == oracle.system_version.version
        assert core.pruned_version == oracle.log.pruned_version

    # Final sweep: replica state, retained history and the shard maps all
    # agree with the fault-free oracle.
    core = certifier.core
    if not observer_connected:
        # Same bootstrap rule as the first poll (see above).
        oracle_seen = max(oracle_seen, oracle.log.pruned_version)
        sharded_seen = oracle_seen
    oracle_seen = _apply(
        oracle_state, oracle.fetch_remote_writesets(oracle_seen, replica="observer"),
        oracle_seen)
    sharded_seen = _apply(
        sharded_state,
        certifier.fetch_remote_writesets(sharded_seen, replica="observer"),
        sharded_seen)
    assert sharded_seen == oracle_seen
    assert sharded_state == oracle_state
    for version in range(core.pruned_version + 1, core.last_version + 1):
        record = core.record_at(version)
        assert (sorted(record.writeset.iter_item_ids())
                == sorted(oracle.log.record_at(version).writeset.iter_item_ids()))
        for shard_id, local in record.shard_locals:
            assert core.shards[shard_id].global_of(local) == version

    return {
        "crashes": crashes,
        "crash_fired": injector.fired,
        "commits": commits,
        "system_version": core.system_version.version,
        "pruned_version": core.pruned_version,
        "recoveries": certifier.stats.recoveries,
    }
