"""Routed sessions against live functional replicated systems.

The scheduler's unit behaviour is covered by ``test_balancer_scheduler``;
these tests drive it end to end through real engine-backed replicas: a
routed session commits through whichever replica the policy picks, the
conflict-aware policy avoids the staleness self-conflict a bouncing client
suffers, and admission control surfaces as ``AdmissionTimeoutError`` in the
single-threaded functional stack.
"""

from __future__ import annotations

import pytest

from repro import build_tashkent_mw_system
from repro.errors import AdmissionTimeoutError, NoHealthyReplicaError


def build_counter_system(num_replicas=4):
    system = build_tashkent_mw_system(num_replicas=num_replicas)
    system.create_table("counters", ["id", "value"])
    session = system.session(0, client_name="loader")
    session.begin()
    session.insert("counters", "k", id="k", value=0)
    assert session.commit().committed
    system.refresh_all()
    return system


def test_routed_session_commits_and_replicas_converge():
    system = build_counter_system(num_replicas=3)
    scheduler = system.scheduler("round-robin")
    session = system.routed_session(scheduler, client_name="writer")
    routed_to = set()
    for i in range(6):
        session.begin(items=[("counters", f"w{i}")])
        session.insert("counters", f"w{i}", id=f"w{i}", value=i)
        assert session.commit().committed
        routed_to.add(session.last_replica_index)
        # Keep every replica fresh so the next bounce lands on a replica
        # that has already applied this commit (this is exactly the manual
        # work conflict-aware routing makes unnecessary — see below).
        system.refresh_all()
    assert len(routed_to) > 1, "round-robin should have used several replicas"
    assert system.replicas_consistent()


def test_round_robin_bounce_self_conflicts_where_affinity_does_not():
    """A client rewriting one row back-to-back across stale replicas aborts.

    With round-robin the second write lands on a replica that has not yet
    applied the first commit, so certification finds the writeset
    intersecting its own predecessor.  Conflict-aware routing keeps the
    writer on the replica that observed its previous commit and both
    transactions commit.
    """
    # Round-robin: replica 1 never saw the commit applied at replica 0.
    system = build_counter_system()
    rr = system.routed_session(system.scheduler("round-robin"), client_name="rr")
    rr.begin(items=[("counters", "k")])
    rr.update("counters", "k", value=1)
    assert rr.commit().committed
    rr.begin(items=[("counters", "k")])
    rr.update("counters", "k", value=2)
    outcome = rr.commit()
    assert not outcome.committed
    assert outcome.abort_reason == "certification"
    assert rr.last_replica_index != 0

    # Conflict-aware: the affinity routes the rewrite back to replica 0.
    system = build_counter_system()
    ca = system.routed_session(system.scheduler("conflict-aware"), client_name="ca")
    for value in (1, 2, 3):
        ca.begin(items=[("counters", "k")])
        ca.update("counters", "k", value=value)
        assert ca.commit().committed, f"rewrite #{value} should commit"
    assert ca.last_replica_index == 0
    assert ca.commits == 3 and ca.aborts == 0


def test_admission_limit_raises_in_functional_stack_until_a_slot_frees():
    system = build_counter_system(num_replicas=2)
    scheduler = system.scheduler("least-loaded", multiprogramming_limit=1)
    holders = []
    for i in range(2):
        holder = system.routed_session(scheduler, client_name=f"holder-{i}")
        holder.begin()
        holders.append(holder)
    blocked = system.routed_session(scheduler, client_name="blocked")
    with pytest.raises(AdmissionTimeoutError):
        blocked.begin()
    # Releasing one slot (commit) lets the next begin route immediately.
    holders[0].commit()
    assert blocked.begin() == holders[0].last_replica_index
    blocked.abort()
    holders[1].abort()
    assert all(e.in_flight == 0 for e in scheduler.endpoints)


def test_aborted_statement_releases_the_admission_slot():
    from repro.errors import TransactionAborted

    system = build_counter_system(num_replicas=2)
    scheduler = system.scheduler("least-loaded", multiprogramming_limit=1)

    # Commit a write to "k" through replica 0 while replica 1 is stale.
    writer = system.session(0, client_name="writer")
    writer.begin()
    writer.update("counters", "k", value=10)
    assert writer.commit().committed

    # Route a session onto stale replica 1 (replica 0 is down), then let the
    # refresh deliver the conflicting writeset mid-transaction: the write
    # hits eager pre-certification, which aborts the statement itself.
    scheduler.mark_down(0)
    stale = system.routed_session(scheduler, client_name="stale")
    stale_index = stale.begin()
    assert stale_index == 1
    system.replicas[1].refresh()
    with pytest.raises(TransactionAborted):
        stale.update("counters", "k", value=99)
    assert not stale.in_transaction
    assert scheduler.endpoints[stale_index].in_flight == 0


def test_scheduler_skips_downed_replica_and_recovers():
    system = build_counter_system(num_replicas=3)
    scheduler = system.scheduler("round-robin")
    scheduler.mark_down(0)
    session = system.routed_session(scheduler, client_name="client")
    for i in range(4):
        session.begin(items=[("counters", f"d{i}")])
        session.insert("counters", f"d{i}", id=f"d{i}", value=i)
        assert session.commit().committed
        assert session.last_replica_index != 0
    scheduler.mark_down(1)
    scheduler.mark_down(2)
    with pytest.raises(NoHealthyReplicaError):
        session.begin()
    scheduler.mark_up(0)
    assert session.begin() == 0
    session.abort()


def test_routed_session_with_single_replica_system():
    system = build_counter_system(num_replicas=1)
    session = system.routed_session("conflict-aware", client_name="solo")
    for value in (1, 2):
        with session.transaction(items=[("counters", "k")]):
            session.update("counters", "k", value=value)
    assert session.commits == 2 and session.last_replica_index == 0


def test_scheduler_snapshot_reads_live_replica_signals():
    system = build_counter_system(num_replicas=2)
    scheduler = system.scheduler("staleness-aware")
    # Commit through replica 0 only; replica 1's applied version trails.
    pinned = system.session(0, client_name="pinned")
    pinned.begin()
    pinned.update("counters", "k", value=5)
    assert pinned.commit().committed
    snapshot = scheduler.snapshot()
    versions = [r["applied_version"] for r in snapshot["replicas"]]
    assert versions[0] > versions[1]
    # The staleness-aware policy therefore routes to replica 0.
    session = system.routed_session(scheduler, client_name="reader")
    assert session.begin(readonly=True) == 0
    session.abort()
