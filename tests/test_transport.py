"""Tests for the transport layer: bus, flush policies, writeset stream, and
the group-apply path that consumes its batches — in both stacks."""

import pytest

from repro.core.certification import CertificationRequest, RemoteWriteSetInfo
from repro.core.config import ReplicationConfig, SystemKind, WorkloadName
from repro.core.group_commit import GroupCommitStats
from repro.core.writeset import make_writeset
from repro.cluster.experiment import ExperimentConfig, build_model
from repro.cluster.nodes import SimCertifierNode
from repro.cluster.tashkent_mw import TashkentMWModel
from repro.engine.database import Database
from repro.errors import ConfigurationError
from repro.middleware.certifier import CertifierConfig, CertifierService
from repro.middleware.replica import Replica
from repro.sim.kernel import Environment
from repro.sim.metrics import MetricsCollector
from repro.sim.rng import RandomStreams
from repro.transport import (
    ExplicitFlushPolicy,
    ImmediateFlushPolicy,
    MessageBus,
    SizeCappedFlushPolicy,
    TimeWindowFlushPolicy,
    WritesetStream,
    policy_from_name,
)
from repro.workloads.allupdates import AllUpdatesWorkload


def info(version, *keys, table="t"):
    return RemoteWriteSetInfo(
        commit_version=version,
        writeset=make_writeset([(table, key) for key in keys]),
        origin_replica="origin",
        conflict_free_back_to=version - 1,
    )


# ------------------------------------------------------------------- policies

def test_policy_from_name_builds_each_kind():
    assert isinstance(policy_from_name("immediate"), ImmediateFlushPolicy)
    assert policy_from_name("size", batch_size=8).max_batch == 8
    assert policy_from_name("window", window_ms=5.0).window_ms == 5.0
    assert isinstance(policy_from_name("explicit"), ExplicitFlushPolicy)
    with pytest.raises(ConfigurationError):
        policy_from_name("nope")


def test_policy_triggers():
    assert ImmediateFlushPolicy().should_flush(1, 0.0)
    size = SizeCappedFlushPolicy(3)
    assert not size.should_flush(2, 100.0)
    assert size.should_flush(3, 0.0)
    window = TimeWindowFlushPolicy(10.0, max_batch=5)
    assert not window.should_flush(1, 9.0)
    assert window.should_flush(1, 10.0)
    assert window.should_flush(5, 0.0)  # cap fires before the window
    assert not ExplicitFlushPolicy().should_flush(1000, 1e9)


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        SizeCappedFlushPolicy(0)
    with pytest.raises(ConfigurationError):
        TimeWindowFlushPolicy(-1.0)


# ------------------------------------------------------------------- bus

def test_bus_fan_out_and_drain():
    bus = MessageBus()
    a = bus.subscribe("updates", "a")
    b = bus.subscribe("updates", "b")
    bus.publish("updates", 1)
    bus.publish("updates", 2)
    assert [m.payload for m in a.poll()] == [1, 2]
    assert a.poll() == []
    assert [m.payload for m in b.poll(max_messages=1)] == [1]
    assert b.pending == 1


def test_bus_callback_subscription_and_unsubscribe():
    bus = MessageBus()
    seen = []
    sub = bus.subscribe("events", "cb", callback=seen.append)
    bus.publish("events", "x")
    assert [m.payload for m in seen] == ["x"]
    sub.close()
    bus.publish("events", "y")
    assert len(seen) == 1
    # Publishing to a topic with no subscribers is counted, not an error.
    assert bus.stats.dropped >= 1


# ------------------------------------------------------------------- stream

def test_stream_immediate_policy_delivers_per_writeset_batches():
    stream = WritesetStream(policy=ImmediateFlushPolicy())
    sub = stream.subscribe("r0")
    for v in (1, 2, 3):
        stream.offer(info(v, v))
    batches = sub.poll()
    assert [len(batch) for batch in batches] == [1, 1, 1]
    assert sub.version == 3


def test_stream_size_capped_policy_batches():
    stream = WritesetStream(policy=SizeCappedFlushPolicy(2))
    sub = stream.subscribe("r0")
    stream.offer(info(1, "a"))
    assert sub.poll() == []  # below the cap: nothing delivered yet
    stream.offer(info(2, "b"))
    stream.offer(info(3, "c"))
    stream.flush()  # drain the straggler
    batches = sub.poll()
    assert [[i.commit_version for i in batch] for batch in batches] == [[1, 2], [3]]
    # Batch statistics come from the shared GroupCommitBatcher engine.
    assert stream.stats.flushes == 2
    assert stream.stats.largest_batch == 2


def test_stream_time_window_policy():
    stream = WritesetStream(policy=TimeWindowFlushPolicy(10.0))
    sub = stream.subscribe("r0")
    stream.offer(info(1, "a"), now=0.0)
    assert stream.flush_due(now=5.0) == []
    stream.offer(info(2, "b"), now=12.0)  # oldest has waited 12ms >= 10ms
    assert [i.commit_version for batch in sub.poll() for i in batch] == [1, 2]


def test_subscription_cursor_filters_redelivery_and_backfill():
    stream = WritesetStream(policy=ImmediateFlushPolicy())
    early = stream.subscribe("early")
    stream.offer(info(1, "a"))
    stream.offer(info(2, "b"))
    # A late joiner is backfilled with what it missed, once.
    late = stream.subscribe("late", from_version=1,
                            backfill=[info(1, "a"), info(2, "b")])
    stream.offer(info(3, "c"))
    assert [i.commit_version for b in late.poll() for i in b] == [2, 3]
    # The cursor makes polling idempotent even if versions were seen
    # out-of-band.
    early.advance_to(2)
    assert [i.commit_version for b in early.poll() for i in b] == [3]


def test_group_commit_stats_histogram_is_bounded():
    stats = GroupCommitStats()
    for size in (1, 1, 2, 3, 5, 300):
        stats.record_flush(size)
    assert stats.flushes == 6
    assert stats.largest_batch == 300
    assert stats.average_batch_size == pytest.approx(312 / 6)
    assert stats.batch_size_histogram == {1: 2, 2: 1, 4: 1, 8: 1, 512: 1}
    other = GroupCommitStats()
    other.record_flush(300)
    stats.merge(other)
    assert stats.batch_size_histogram[512] == 2
    # The per-flush state stays O(1): buckets, not an entry per flush.
    for _ in range(10_000):
        stats.record_flush(7)
    assert len(stats.batch_size_histogram) <= 64


# ------------------------------------------------------------------- group apply

def test_apply_writeset_batch_one_wal_append_per_batch(accounts_db):
    base_version = accounts_db.current_version
    appended_before = accounts_db.wal.stats.records_appended
    fsyncs_before = accounts_db.fsync_count
    writesets = [
        (base_version + i, make_writeset([("accounts", i % 10)]))
        for i in range(1, 9)
    ]
    applied = accounts_db.apply_writeset_batch(writesets)
    assert applied == 8
    assert accounts_db.current_version == base_version + 8
    assert accounts_db.wal.stats.records_appended == appended_before + 1
    assert accounts_db.fsync_count == fsyncs_before + 1
    assert accounts_db.remote_batches_applied == 1
    assert accounts_db.remote_writesets_applied == 8


def test_apply_writeset_batch_preserves_per_version_visibility(empty_db):
    empty_db.apply_writeset_batch([
        (5, make_writeset([("items", 1)])),
        (9, make_writeset([("items", 2)])),
    ])
    table = empty_db.table("items")
    assert table.exists(1, 5) and not table.exists(2, 5)
    assert table.exists(2, 9)


def test_apply_writeset_batch_aborts_conflicting_local_transactions(accounts_db):
    txn = accounts_db.begin()
    accounts_db.update(txn, "accounts", 3, balance=1)
    accounts_db.apply_writeset_batch(
        [(accounts_db.current_version + 1, make_writeset([("accounts", 3)]))]
    )
    assert txn.status.value == "aborted"
    assert txn.abort_reason == "remote-writeset-priority"


# ------------------------------------------------------------------- functional stack

def build_replica(certifier, name, system=SystemKind.TASHKENT_MW):
    db = Database(name)
    db.create_table("accounts", ["id", "balance"])
    return Replica(name, db, certifier, system=system)


def test_certifier_service_pushes_batches_to_subscribers():
    service = CertifierService()
    replica_a = build_replica(service, "replica-A")
    replica_b = build_replica(service, "replica-B")
    session = replica_a.proxy
    txn = session.begin()
    session.insert(txn, "accounts", 1, id=1, balance=10)
    assert session.commit(txn).committed
    # The writeset was propagated at durability-flush time: B's subscription
    # holds one pushed batch, no pull request was made.
    assert replica_b.proxy.subscription.pending_batches == 1
    applied = replica_b.refresh()
    assert applied == 1
    assert replica_b.database.table("accounts").exists(1, replica_b.replica_version)
    assert replica_b.stats.refreshes == 1


def test_busy_replica_subscription_stays_bounded_without_refreshing():
    """A replica that receives writesets in-band with every commit must not
    accumulate the same batches unread in its subscription queue."""
    service = CertifierService()
    replica_a = build_replica(service, "replica-A")
    replica_b = build_replica(service, "replica-B")
    for i in range(20):  # both replicas commit; neither ever refreshes
        for replica in (replica_a, replica_b):
            txn = replica.proxy.begin()
            key = f"{replica.name}-{i}"
            replica.proxy.insert(txn, "accounts", key, id=key, balance=i)
            assert replica.proxy.commit(txn).committed
    assert replica_a.proxy.subscription.pending_batches <= 1
    assert replica_b.proxy.subscription.pending_batches <= 1


def test_replica_counts_noop_refreshes_separately():
    service = CertifierService()
    replica = build_replica(service, "replica-A")
    assert replica.refresh() == 0
    assert replica.stats.refreshes == 0
    assert replica.stats.noop_refreshes == 1
    txn = replica.proxy.begin()
    replica.proxy.insert(txn, "accounts", 1, id=1, balance=1)
    replica.proxy.commit(txn)
    # Own writeset only: already applied locally, so the refresh is a no-op.
    assert replica.refresh() == 0
    assert replica.stats.noop_refreshes == 2


def test_propagation_policy_is_pluggable_at_the_service():
    service = CertifierService(
        CertifierConfig(propagation_policy=SizeCappedFlushPolicy(4))
    )
    replica_a = build_replica(service, "replica-A")
    replica_b = build_replica(service, "replica-B")
    for i in range(8):
        txn = replica_a.proxy.begin()
        replica_a.proxy.insert(txn, "accounts", i, id=i, balance=i)
        assert replica_a.proxy.commit(txn).committed
    # Size-capped batching: 8 writesets arrive as 2 batches of 4.
    assert replica_b.proxy.subscription.pending_batches == 2
    assert replica_b.refresh() == 8
    assert service.stream.stats.largest_batch == 4


def test_refresh_delivers_sub_cap_tail_under_any_policy():
    """Bounded staleness overrides the batching policy: a refresh must
    deliver a pending tail the policy would keep holding."""
    for policy in (SizeCappedFlushPolicy(4), TimeWindowFlushPolicy(60_000.0)):
        service = CertifierService(CertifierConfig(propagation_policy=policy))
        replica_a = build_replica(service, "replica-A")
        replica_b = build_replica(service, "replica-B")
        for i in range(5):  # 5 does not divide by the cap; window never fires
            txn = replica_a.proxy.begin()
            replica_a.proxy.insert(txn, "accounts", i, id=i, balance=i)
            assert replica_a.proxy.commit(txn).committed
        assert replica_b.refresh() == 5
        assert replica_b.proxy.replica_version.version == service.system_version
        # Nothing stranded: the next refresh is a genuine no-op.
        assert replica_b.refresh() == 0


def test_ordered_refresh_extends_horizons_and_shares_one_flush():
    """A Tashkent-API refresh batch of conflict-free writesets must share one
    submission group (one flush), not serialize on propagation-time horizons."""
    service = CertifierService()
    replica_a = build_replica(service, "replica-A", system=SystemKind.TASHKENT_API)
    replica_b = build_replica(service, "replica-B", system=SystemKind.TASHKENT_API)
    for i in range(3):  # disjoint rows: no genuine conflicts
        txn = replica_a.proxy.begin()
        replica_a.proxy.insert(txn, "accounts", i, id=i, balance=i)
        assert replica_a.proxy.commit(txn).committed
    fsyncs_before = replica_b.database.fsync_count
    assert replica_b.refresh() == 3
    assert replica_b.database.fsync_count - fsyncs_before == 1
    assert replica_b.proxy.stats.artificial_conflicts == 0


def test_disconnect_replica_closes_stream_subscription():
    service = CertifierService()
    replica_a = build_replica(service, "replica-A")
    build_replica(service, "replica-B")
    assert service.stream.bus.subscriber_count(service.stream.topic) == 2
    service.disconnect_replica("replica-B")
    assert service.stream.bus.subscriber_count(service.stream.topic) == 1
    # Batches published after the disconnect are not retained for B.
    txn = replica_a.proxy.begin()
    replica_a.proxy.insert(txn, "accounts", 1, id=1, balance=1)
    replica_a.proxy.commit(txn)
    assert all(s.name != "replica-B" for s in service.stream.subscriptions())


# ------------------------------------------------------------------- simulated stack

def make_sim_certifier(num_replicas=2):
    env = Environment()
    config = ReplicationConfig(system=SystemKind.TASHKENT_MW,
                               num_replicas=num_replicas)
    node = SimCertifierNode(env, config, RandomStreams(7), durability_enabled=True)
    for i in range(num_replicas):
        node.register_replica(f"replica-{i}")
    return env, node


def test_sim_certifier_announces_durability_over_the_bus():
    env, node = make_sim_certifier()
    request = CertificationRequest(
        tx_start_version=0,
        writeset=make_writeset([("t", 1)]),
        replica_version=0,
        origin_replica="replica-0",
    )
    proc = env.process(node.certify(request))
    result = env.run_until_complete(proc)
    assert result.committed
    # The decision was only released after the log-writer's flush announced
    # durability on the bus.
    assert node.certifier.log.durable_version == 1
    assert node.fsync_count == 1
    assert node.stream.stats.flushes == 1


def test_sim_propagate_delivers_batches_with_network_delay():
    env, node = make_sim_certifier()
    request = CertificationRequest(
        tx_start_version=0,
        writeset=make_writeset([("t", 1)]),
        replica_version=0,
        origin_replica="replica-0",
    )
    env.run_until_complete(env.process(node.certify(request)))
    messages_before = node.network.messages
    remote = env.run_until_complete(env.process(node.propagate("replica-1")))
    assert [i.commit_version for i in remote] == [1]
    assert node.network.messages > messages_before  # delivery crossed the LAN
    # Draining again finds nothing new (the cursor advanced).
    assert env.run_until_complete(env.process(node.propagate("replica-1"))) == []


def test_sim_propagate_skips_writesets_already_applied_in_band():
    """Writesets a replica received with a certification response must not
    cross the modeled LAN a second time on the staleness path."""
    env, node = make_sim_certifier()
    request = CertificationRequest(
        tx_start_version=0,
        writeset=make_writeset([("t", 1)]),
        replica_version=0,
        origin_replica="replica-0",
    )
    env.run_until_complete(env.process(node.certify(request)))
    bytes_before = node.network.bytes_sent
    remote = env.run_until_complete(
        env.process(node.propagate("replica-1", applied_version=1))
    )
    assert remote == []
    # Only the heartbeat-sized poll/ack pair crossed the LAN.
    assert node.network.bytes_sent - bytes_before == 32


def test_sim_propagate_flushes_policy_held_tail():
    env = Environment()
    config = ReplicationConfig(system=SystemKind.TASHKENT_MW, num_replicas=2)
    node = SimCertifierNode(env, config, RandomStreams(7),
                            durability_enabled=True,
                            propagation_policy=SizeCappedFlushPolicy(32))
    node.register_replica("replica-0")
    node.register_replica("replica-1")
    for version in range(1, 4):  # a burst far below the cap, then silence
        request = CertificationRequest(
            tx_start_version=version - 1,
            writeset=make_writeset([("t", version)]),
            replica_version=version - 1,
            origin_replica="replica-0",
        )
        env.run_until_complete(env.process(node.certify(request)))
    assert node.stream.pending_count == 3  # held by the size cap
    remote = env.run_until_complete(env.process(node.propagate("replica-1")))
    assert [info.commit_version for info in remote] == [1, 2, 3]


def test_sim_staleness_refresh_updates_idle_replica():
    """An idle replica catches up purely through the transport stream."""
    config = ReplicationConfig(system=SystemKind.TASHKENT_MW, num_replicas=2,
                               clients_per_replica=1, staleness_bound_ms=50.0)
    workload = AllUpdatesWorkload(num_replicas=2)
    env = Environment()
    rng = RandomStreams(3)
    metrics = MetricsCollector(warmup_ms=0.0, measure_ms=1_000.0)
    model = TashkentMWModel(env, config, workload, rng, metrics)
    replica_0, replica_1 = model.replicas
    profile = workload.next_transaction(rng, replica_index=0, client_index=0,
                                        sequence=0)
    commit = env.process(model.commit_update(replica_0, profile, 0))
    env.run_until_complete(commit)
    assert replica_0.replica_version == 1
    assert replica_1.replica_version == 0  # not yet delivered
    env.run_until(200.0)  # a few staleness periods
    assert replica_1.replica_version == 1
    # The refresh also fed the log-GC low-water mark for the idle replica.
    assert model.certifier_node.certifier.low_water_mark() == 1


def test_experiment_still_runs_end_to_end():
    config = ExperimentConfig(system=SystemKind.TASHKENT_MW,
                              workload=WorkloadName.ALL_UPDATES,
                              num_replicas=2, warmup_ms=100.0, measure_ms=300.0)
    model, metrics, env = build_model(config)
    model.start_clients(metrics.window_end_ms)
    env.run_until(metrics.window_end_ms)
    assert not env.failed_processes
    assert metrics.goodput_tps() > 0
