"""Unit tests for the write-lock manager and deadlock detection."""

import pytest

from repro.engine.locks import LockBlockedError, LockManager, LockStatus
from repro.errors import DeadlockError


def test_first_writer_gets_the_lock_and_reacquisition_is_noop():
    locks = LockManager()
    assert locks.try_acquire(1, ("t", "x")) is LockStatus.GRANTED
    assert locks.try_acquire(1, ("t", "x")) is LockStatus.ALREADY_HELD
    assert locks.holds(1, ("t", "x"))
    assert locks.holder_of(("t", "x")) == 1
    assert locks.active_lock_count() == 1


def test_second_writer_blocks_behind_the_holder():
    locks = LockManager()
    locks.try_acquire(1, ("t", "x"))
    with pytest.raises(LockBlockedError) as excinfo:
        locks.try_acquire(2, ("t", "x"))
    assert excinfo.value.holder == 1
    assert excinfo.value.requester == 2
    assert locks.wait_for_graph() == {2: 1}


def test_release_promotes_the_first_waiter_in_fifo_order():
    locks = LockManager()
    locks.try_acquire(1, ("t", "x"))
    with pytest.raises(LockBlockedError):
        locks.try_acquire(2, ("t", "x"))
    with pytest.raises(LockBlockedError):
        locks.try_acquire(3, ("t", "x"))
    promotions = locks.release_all(1)
    assert promotions == [(("t", "x"), 2)]
    assert locks.holder_of(("t", "x")) == 2
    # Transaction 3 is still queued behind the new holder.
    promotions = locks.release_all(2)
    assert promotions == [(("t", "x"), 3)]


def test_release_without_waiters_frees_the_item():
    locks = LockManager()
    locks.try_acquire(1, ("t", "x"))
    assert locks.release_all(1) == []
    assert locks.holder_of(("t", "x")) is None
    assert locks.active_lock_count() == 0


def test_deadlock_detection_aborts_the_requester_closing_the_cycle():
    locks = LockManager()
    locks.try_acquire(1, ("t", "x"))
    locks.try_acquire(2, ("t", "y"))
    with pytest.raises(LockBlockedError):
        locks.try_acquire(2, ("t", "x"))  # 2 waits on 1
    with pytest.raises(DeadlockError):
        locks.try_acquire(1, ("t", "y"))  # 1 -> 2 -> 1 would be a cycle
    assert locks.deadlocks_detected == 1


def test_three_way_deadlock_detected():
    locks = LockManager()
    locks.try_acquire(1, ("t", "a"))
    locks.try_acquire(2, ("t", "b"))
    locks.try_acquire(3, ("t", "c"))
    with pytest.raises(LockBlockedError):
        locks.try_acquire(1, ("t", "b"))
    with pytest.raises(LockBlockedError):
        locks.try_acquire(2, ("t", "c"))
    with pytest.raises(DeadlockError):
        locks.try_acquire(3, ("t", "a"))


def test_cancel_wait_removes_the_waiter_from_the_queue():
    locks = LockManager()
    locks.try_acquire(1, ("t", "x"))
    with pytest.raises(LockBlockedError):
        locks.try_acquire(2, ("t", "x"))
    locks.cancel_wait(2)
    assert locks.release_all(1) == []  # nobody left to promote
    assert locks.wait_for_graph() == {}


def test_locks_held_by_lists_all_items():
    locks = LockManager()
    locks.try_acquire(5, ("t", 1))
    locks.try_acquire(5, ("u", 2))
    assert locks.locks_held_by(5) == frozenset({("t", 1), ("u", 2)})
    locks.release_all(5)
    assert locks.locks_held_by(5) == frozenset()
