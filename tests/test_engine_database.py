"""Unit and behaviour tests for the snapshot-isolation database engine."""

import pytest

from repro.core.writeset import WriteOp, make_writeset
from repro.engine.database import Database
from repro.engine.locks import LockBlockedError
from repro.errors import (
    DuplicateKeyError,
    InvalidTransactionState,
    StorageError,
    TransactionAborted,
    UnknownTableError,
    WriteConflictError,
)


# ----------------------------------------------------------------- basics

def test_create_table_and_duplicate_rejected(empty_db):
    with pytest.raises(StorageError):
        empty_db.create_table("items", ["id"])
    with pytest.raises(UnknownTableError):
        empty_db.table("nope")


def test_insert_read_commit_round_trip(empty_db):
    txn = empty_db.begin()
    empty_db.insert(txn, "items", 1, value="hello")
    assert empty_db.read(txn, "items", 1)["value"] == "hello"  # read-your-writes
    version = empty_db.commit(txn)
    assert version == 1
    reader = empty_db.begin()
    assert empty_db.read(reader, "items", 1)["value"] == "hello"


def test_readonly_transaction_commit_is_free(accounts_db):
    fsyncs_before = accounts_db.fsync_count
    txn = accounts_db.begin()
    accounts_db.read(txn, "accounts", 1)
    assert accounts_db.commit(txn) == 0
    assert accounts_db.fsync_count == fsyncs_before
    assert accounts_db.readonly_commits == 1


def test_snapshot_isolation_reader_does_not_see_later_commits(accounts_db):
    reader = accounts_db.begin()
    writer = accounts_db.begin()
    accounts_db.update(writer, "accounts", 1, balance=999)
    accounts_db.commit(writer)
    # The reader's snapshot predates the writer's commit.
    assert accounts_db.read(reader, "accounts", 1)["balance"] == 100
    fresh = accounts_db.begin()
    assert accounts_db.read(fresh, "accounts", 1)["balance"] == 999


def test_scan_merges_buffered_writes(accounts_db):
    txn = accounts_db.begin()
    accounts_db.update(txn, "accounts", 0, balance=1)
    accounts_db.delete(txn, "accounts", 1)
    rows = dict(accounts_db.scan(txn, "accounts"))
    assert rows[0]["balance"] == 1
    assert 1 not in rows
    assert len(rows) == 9


# ----------------------------------------------------------------- conflicts

def test_first_updater_wins_on_committed_conflict(accounts_db):
    t1 = accounts_db.begin()
    t2 = accounts_db.begin()
    accounts_db.update(t1, "accounts", 5, balance=1)
    accounts_db.commit(t1)
    with pytest.raises(WriteConflictError):
        accounts_db.update(t2, "accounts", 5, balance=2)
    assert t2.status.value == "aborted"


def test_concurrent_writer_blocks_behind_active_holder(accounts_db):
    t1 = accounts_db.begin()
    t2 = accounts_db.begin()
    accounts_db.update(t1, "accounts", 5, balance=1)
    with pytest.raises(LockBlockedError):
        accounts_db.update(t2, "accounts", 5, balance=2)
    # When the holder commits, the waiting competitor is aborted (SI rule).
    accounts_db.commit(t1)
    assert t2.status.value == "aborted"
    assert accounts_db.forced_aborts == 1


def test_waiter_survives_if_holder_aborts(accounts_db):
    t1 = accounts_db.begin()
    t2 = accounts_db.begin()
    accounts_db.update(t1, "accounts", 5, balance=1)
    with pytest.raises(LockBlockedError):
        accounts_db.update(t2, "accounts", 5, balance=2)
    accounts_db.abort(t1)
    # t2 now holds the lock and can proceed.
    accounts_db.update(t2, "accounts", 5, balance=2)
    accounts_db.commit(t2)
    fresh = accounts_db.begin()
    assert accounts_db.read(fresh, "accounts", 5)["balance"] == 2


def test_duplicate_primary_key_rejected_at_commit_install(accounts_db):
    txn = accounts_db.begin()
    with pytest.raises(StorageError):
        accounts_db.insert(txn, "accounts", 1, id=1)  # missing column balance/owner
    txn2 = accounts_db.begin()
    accounts_db.insert(txn2, "accounts", 100, id=100, balance=1, owner="x")
    accounts_db.commit(txn2)
    txn3 = accounts_db.begin()
    accounts_db.insert(txn3, "accounts", 100, id=100, balance=2, owner="y")
    with pytest.raises(DuplicateKeyError):
        accounts_db.commit(txn3)


# ----------------------------------------------------------------- writesets

def test_extract_writeset_matches_trigger_semantics(accounts_db):
    txn = accounts_db.begin()
    accounts_db.update(txn, "accounts", 1, balance=50)
    accounts_db.update(txn, "accounts", 1, owner="someone")  # merged
    accounts_db.insert(txn, "accounts", 77, id=77, balance=0, owner="new")
    accounts_db.delete(txn, "accounts", 2)
    writeset = accounts_db.extract_writeset(txn)
    ops = {item.key: item.op for item in writeset}
    assert ops[1] is WriteOp.UPDATE
    assert ops[77] is WriteOp.INSERT
    assert ops[2] is WriteOp.DELETE
    assert len(writeset) == 3


def test_apply_writeset_with_priority_aborts_conflicting_local_txn(accounts_db):
    local = accounts_db.begin()
    accounts_db.update(local, "accounts", 3, balance=1)
    remote = make_writeset([("accounts", 3)])
    version = accounts_db.apply_writeset(remote, version=accounts_db.current_version + 1)
    assert version == accounts_db.current_version
    assert local.status.value == "aborted"
    assert local.abort_reason == "remote-writeset-priority"


def test_apply_writesets_grouped_commits_once(accounts_db):
    fsyncs_before = accounts_db.fsync_count
    commits_before = accounts_db.commits
    version = accounts_db.apply_writesets_grouped(
        [make_writeset([("accounts", 1)]), make_writeset([("accounts", 2)])],
        version=accounts_db.current_version + 5,
    )
    assert version == accounts_db.current_version
    assert accounts_db.commits == commits_before + 1
    assert accounts_db.fsync_count == fsyncs_before + 1


# ----------------------------------------------------------------- commit versions and fsyncs

def test_commit_with_explicit_version_advances_clock(accounts_db):
    txn = accounts_db.begin()
    accounts_db.update(txn, "accounts", 1, balance=1)
    version = accounts_db.commit(txn, version=42)
    assert version == 42
    assert accounts_db.current_version == 42


def test_synchronous_commit_switch_controls_fsyncs(empty_db):
    empty_db.set_synchronous_commit(False)
    txn = empty_db.begin()
    empty_db.insert(txn, "items", 1, value=1)
    empty_db.commit(txn)
    assert empty_db.fsync_count == 0
    empty_db.set_synchronous_commit(True)
    txn = empty_db.begin()
    empty_db.insert(txn, "items", 2, value=2)
    empty_db.commit(txn)
    assert empty_db.fsync_count == 1


def test_ordered_commits_group_into_one_fsync_and_announce_in_order(empty_db):
    t1 = empty_db.begin()
    empty_db.insert(t1, "items", 1, value=1)
    t2 = empty_db.begin()
    empty_db.insert(t2, "items", 2, value=2)
    # Stage out of order: COMMIT 2 then COMMIT 1.
    empty_db.commit_ordered(t2, 2)
    empty_db.commit_ordered(t1, 1)
    assert empty_db.current_version == 0  # nothing announced yet
    announced = empty_db.flush_ordered_commits()
    assert announced == [1, 2]
    assert empty_db.fsync_count == 1
    assert empty_db.current_version == 2
    reader = empty_db.begin()
    assert empty_db.read(reader, "items", 1)["value"] == 1
    assert empty_db.read(reader, "items", 2)["value"] == 2


def test_ordered_commit_waits_for_missing_predecessor(empty_db):
    t2 = empty_db.begin()
    empty_db.insert(t2, "items", 2, value=2)
    empty_db.commit_ordered(t2, 2)
    announced = empty_db.flush_ordered_commits()
    assert announced == []  # version 1 never arrived: effects stay invisible
    assert empty_db.current_version == 0
    assert empty_db.sequencer.would_deadlock()


def test_ordered_commit_rejects_readonly(empty_db):
    txn = empty_db.begin()
    with pytest.raises(InvalidTransactionState):
        empty_db.commit_ordered(txn, 1)


# ----------------------------------------------------------------- misc lifecycle

def test_operations_on_foreign_or_finished_transactions_rejected(accounts_db):
    txn = accounts_db.begin()
    accounts_db.commit(txn)
    with pytest.raises(InvalidTransactionState):
        accounts_db.read(txn, "accounts", 1)
    other_db = Database("other")
    other_db.create_table("accounts", ["id", "balance", "owner"])
    foreign = other_db.begin()
    with pytest.raises(InvalidTransactionState):
        accounts_db.read(foreign, "accounts", 1)


def test_abort_listener_fires_on_forced_aborts(accounts_db):
    events = []
    accounts_db.abort_listeners.append(lambda txn, reason: events.append(reason))
    local = accounts_db.begin()
    accounts_db.update(local, "accounts", 3, balance=1)
    accounts_db.apply_writeset(make_writeset([("accounts", 3)]))
    assert events == ["remote-writeset-priority"]


def test_vacuum_and_stats(accounts_db):
    for _ in range(3):
        txn = accounts_db.begin()
        accounts_db.update(txn, "accounts", 1, balance=1)
        accounts_db.commit(txn)
    removed = accounts_db.vacuum()
    assert removed >= 2
    stats = accounts_db.stats()
    assert stats["commits"] >= 4
    assert stats["tables"]["accounts"] == 10
