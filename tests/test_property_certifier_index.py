"""Property tests: indexed certification ≡ the reference linear scan.

The tentpole invariant of the indexed certifier log: for any sequence of
certifications, durability advances, crash truncations and garbage
collections, the indexed conflict check reaches exactly the same decisions
as the seed's linear scan over the full history (for every window that GC
has not discarded — below the horizon the contract is a conservative
abort, which is also asserted).

The indexed log additionally runs in ``verify`` mode, so every check is
*also* cross-validated internally against a scan of the retained records.
"""

from hypothesis import given, settings, strategies as st

from repro.core.certification import CertificationRequest, Certifier
from repro.core.certifier_log import MODE_VERIFY, CertifierLog
from repro.core.writeset import make_writeset
from repro.middleware.certifier import CertifierConfig, CertifierService
from repro.middleware.sharded_certifier import ShardedCertifierService

# A small keyspace keeps both conflicts and re-writes of the same item
# frequent, which is what stresses the per-item version lists.
keys = st.integers(min_value=0, max_value=9)
key_lists = st.lists(keys, min_size=1, max_size=4)


class ReferenceScanCertifier:
    """The seed algorithm: scan every logged record after the snapshot.

    Keeps the *full* history (never pruned), so it can answer windows the
    indexed log has garbage-collected — which is exactly what lets the test
    distinguish "correctly conservative" from "wrong".
    """

    def __init__(self):
        self.history = []  # list of (commit_version, frozenset of item ids)

    @property
    def version(self):
        return self.history[-1][0] if self.history else 0

    def first_conflict(self, item_ids, after_version):
        for version, ids in self.history:
            if version > after_version and ids & item_ids:
                return version
        return None

    def certify(self, item_ids, start_version):
        conflict = self.first_conflict(item_ids, start_version)
        if conflict is not None:
            return conflict
        self.history.append((self.version + 1, frozenset(item_ids)))
        return None

    def truncate_to(self, durable_version):
        self.history = [(v, ids) for v, ids in self.history if v <= durable_version]


ops = st.lists(
    st.one_of(
        st.tuples(st.just("certify"), key_lists, st.floats(0.0, 1.0)),
        st.tuples(st.just("durable"), st.floats(0.0, 1.0)),
        st.tuples(st.just("crash"), st.floats(0.0, 1.0)),
        st.tuples(st.just("gc"), st.floats(0.0, 1.0)),
        st.tuples(st.just("probe"), key_lists, st.floats(0.0, 1.0)),
    ),
    min_size=1,
    max_size=60,
)


def _pick(low, high, fraction):
    """Deterministically map a unit float onto the inclusive range."""
    if high <= low:
        return low
    return low + round((high - low) * fraction)


@given(ops)
@settings(max_examples=120, deadline=None)
def test_indexed_decisions_match_reference_scan(operations):
    log = CertifierLog(mode=MODE_VERIFY)
    certifier = Certifier(log)
    reference = ReferenceScanCertifier()

    for op in operations:
        kind = op[0]
        if kind == "certify":
            _, key_list, fraction = op
            writeset = make_writeset([("t", k) for k in key_list])
            # Snapshots are drawn at or above the GC horizon: the low-water
            # protocol guarantees live transactions never start below it.
            start = _pick(log.pruned_version, certifier.system_version.version, fraction)
            result = certifier.certify(CertificationRequest(
                tx_start_version=start,
                writeset=writeset,
                replica_version=certifier.system_version.version,
            ))
            expected_conflict = reference.certify(
                frozenset(writeset.item_ids), start)
            assert result.committed == (expected_conflict is None)
            if expected_conflict is not None:
                assert result.conflicting_version == expected_conflict
            else:
                assert result.tx_commit_version == reference.version
        elif kind == "durable":
            _, fraction = op
            target = _pick(log.durable_version, log.last_version, fraction)
            log.mark_durable(target)
        elif kind == "crash":
            _, fraction = op
            target = _pick(log.durable_version, log.last_version, fraction)
            log.mark_durable(target)
            log.truncate_to_durable()
            reference.truncate_to(target)
            # A crash restarts the certifier over the surviving log.
            certifier = Certifier(log)
            assert certifier.system_version.version == reference.version
        elif kind == "gc":
            _, fraction = op
            target = _pick(log.pruned_version, log.durable_version, fraction)
            log.prune_to(target)
            # Reference keeps full history: GC must not change decisions.
        elif kind == "probe":
            _, key_list, fraction = op
            probe = make_writeset([("t", k) for k in key_list])
            after = _pick(log.pruned_version, log.last_version, fraction)
            assert (log.first_conflicting_version(probe, after)
                    == reference.first_conflict(frozenset(probe.item_ids), after))
            assert log.conflicts(probe, after) == (
                reference.first_conflict(frozenset(probe.item_ids), after) is not None
            )

    # Final sweep: every above-horizon window agrees with the reference;
    # every below-horizon window is conservatively a conflict.
    probe = make_writeset([("t", k) for k in range(10)])
    for after in range(0, log.last_version + 1):
        indexed = log.first_conflicting_version(probe, after)
        if after >= log.pruned_version:
            assert indexed == reference.first_conflict(frozenset(probe.item_ids), after)
        else:
            assert indexed == log.pruned_version
            assert log.conflicts(probe, after)


@given(ops)
@settings(max_examples=60, deadline=None)
def test_gc_and_crash_keep_index_rebuildable(operations):
    """After any op sequence, the live index equals a from-scratch rebuild."""
    log = CertifierLog(mode=MODE_VERIFY)
    certifier = Certifier(log)
    for op in operations:
        kind = op[0]
        if kind == "certify" or kind == "probe":
            key_list, fraction = op[1], op[2]
            writeset = make_writeset([("t", k) for k in key_list])
            start = _pick(log.pruned_version, certifier.system_version.version, fraction)
            certifier.certify(CertificationRequest(
                tx_start_version=start,
                writeset=writeset,
                replica_version=certifier.system_version.version,
            ))
        elif kind == "durable":
            log.mark_durable(_pick(log.durable_version, log.last_version, op[1]))
        elif kind == "crash":
            log.mark_durable(_pick(log.durable_version, log.last_version, op[1]))
            log.truncate_to_durable()
            certifier = Certifier(log)
        elif kind == "gc":
            log.prune_to(_pick(log.pruned_version, log.durable_version, op[1]))

    rebuilt = CertifierLog.from_records(log.iter_records(), durable=False)
    assert rebuilt.index_item_count == log.index_item_count
    probe_all = make_writeset([("t", k) for k in range(10)])
    for after in range(log.pruned_version, log.last_version + 1):
        assert (log.first_conflicting_version(probe_all, after)
                == rebuilt.first_conflicting_version(probe_all, after))


# ---------------------------------------------------------------------------
# Sharded certification ≡ the single certifier (decisions and replica state)
# ---------------------------------------------------------------------------
#
# The second tentpole invariant: for any workload, a sharded certifier
# (shards=N, any N) reaches exactly the same commit/abort decisions, assigns
# the same commit versions, and delivers the same version-ordered writeset
# stream to a replica as the seed single-certifier path (shards=1).  The
# workload spans two tables and a small keyspace so writesets routinely
# straddle shards and conflicts are frequent; garbage collection runs at an
# aggressive interval so the pruned-window paths are exercised too.

shard_ops = st.lists(
    st.one_of(
        # certify: items as (table_index, key) pairs + a snapshot-age fraction
        st.tuples(st.just("certify"),
                  st.lists(st.tuples(st.integers(0, 1), keys), min_size=1, max_size=5),
                  st.floats(0.0, 1.0)),
        st.tuples(st.just("poll"), st.just(0)),
        st.tuples(st.just("gc"), st.just(0)),
    ),
    min_size=1,
    max_size=50,
)


def _service_config(**overrides):
    base = dict(durability_enabled=True, gc_interval_requests=16,
                gc_headroom_versions=4, rng_seed=7)
    base.update(overrides)
    return CertifierConfig(**base)


def _drain(subscription, state, last_seen):
    """Apply a subscription's delivered writesets to a model replica state.

    Asserts global version order on the way (an out-of-order delivery would
    be dropped by the real proxy's watermark filter).  Returns the highest
    version seen.
    """
    for info in subscription.poll_flat():
        assert info.commit_version > last_seen, "delivery out of version order"
        last_seen = info.commit_version
        for item_id in info.writeset.iter_item_ids():
            state[item_id] = info.commit_version
    return last_seen


@given(shard_ops, st.integers(min_value=1, max_value=4))
@settings(max_examples=80, deadline=None)
def test_sharded_certifier_matches_single_decisions_and_replica_state(operations, shards):
    single = CertifierService(_service_config())
    sharded = ShardedCertifierService(_service_config(shards=shards))

    single_sub = single.subscribe_replica("observer", 0)
    sharded_sub = sharded.subscribe_replica("observer", 0)
    single_state: dict = {}
    sharded_state: dict = {}
    single_seen = sharded_seen = 0

    for op in operations:
        kind = op[0]
        if kind == "certify":
            _, entries, fraction = op
            writeset = make_writeset([(f"t{t}", k) for t, k in entries])
            start = _pick(single.core.log.pruned_version,
                          single.system_version, fraction)
            request = dict(tx_start_version=start,
                           replica_version=single.system_version,
                           origin_replica="client")
            result_single = single.certify(
                CertificationRequest(writeset=writeset, **request))
            result_sharded = sharded.certify(
                CertificationRequest(writeset=writeset, **request))
            assert result_sharded.committed == result_single.committed
            assert result_sharded.tx_commit_version == result_single.tx_commit_version
            assert (result_sharded.conflicting_version
                    == result_single.conflicting_version)
            # The merged in-band remote view matches version for version.
            assert ([i.commit_version for i in result_sharded.remote_writesets]
                    == [i.commit_version for i in result_single.remote_writesets])
        elif kind == "poll":
            single.flush_propagation()
            sharded.flush_propagation()
            single_seen = _drain(single_sub, single_state, single_seen)
            sharded_seen = _drain(sharded_sub, sharded_state, sharded_seen)
            # Feed the observer's watermark so log GC can make progress.
            single.register_replica("observer", single_sub.version)
            sharded.register_replica("observer", sharded_sub.version)
        elif kind == "gc":
            single.collect_garbage()
            sharded.collect_garbage()
        # The sharded GC horizon must track the single one: the snapshot
        # strategy above draws from the single service's window.
        assert sharded.core.pruned_version == single.core.log.pruned_version
        assert sharded.system_version == single.system_version

    # Final drain: both replicas converge to the identical state.
    single.flush_propagation()
    sharded.flush_propagation()
    single_seen = _drain(single_sub, single_state, single_seen)
    sharded_seen = _drain(sharded_sub, sharded_state, sharded_seen)
    assert sharded_seen == single_seen
    assert sharded_state == single_state
    assert sharded.core.stats_snapshot().commits == single.core.commits
    assert sharded.core.stats_snapshot().aborts == single.core.aborts


@given(shard_ops, st.integers(min_value=2, max_value=4),
       st.floats(min_value=0.1, max_value=0.5))
@settings(max_examples=25, deadline=None)
def test_sharded_forced_aborts_match_single(operations, shards, rate):
    """The §9.5 abort-injection knob fires identically on both shapes: the
    chooser is consulted at the same decision points with the same RNG."""
    single = CertifierService(_service_config(forced_abort_rate=rate))
    sharded = ShardedCertifierService(_service_config(forced_abort_rate=rate,
                                                      shards=shards))
    for op in operations:
        if op[0] != "certify":
            continue
        _, entries, fraction = op
        writeset = make_writeset([(f"t{t}", k) for t, k in entries])
        start = _pick(single.core.log.pruned_version, single.system_version, fraction)
        request = dict(tx_start_version=start,
                       replica_version=single.system_version,
                       origin_replica="client")
        result_single = single.certify(CertificationRequest(writeset=writeset, **request))
        result_sharded = sharded.certify(CertificationRequest(writeset=writeset, **request))
        assert result_sharded.committed == result_single.committed
        assert result_sharded.forced_abort == result_single.forced_abort
        assert result_sharded.tx_commit_version == result_single.tx_commit_version
