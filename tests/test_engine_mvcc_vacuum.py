"""Unit tests for the MVCC hot path: O(1) installs, incremental vacuum,
the horizon clamp and the maintenance janitor."""

import pytest

from repro.core.config import ReplicationConfig, SystemKind, WorkloadName
from repro.core.stats import JanitorStats, MvccStats
from repro.core.writeset import WriteItem, WriteOp, WriteSet
from repro.engine.database import Database
from repro.engine.rows import LegacyVersionedRow, RowVersion, VersionedRow
from repro.engine.table import Table, TableSchema
from repro.errors import ConfigurationError, StorageError
from repro.middleware.certifier import CertifierConfig
from repro.middleware.janitor import JanitorPolicy, MaintenanceJanitor
from repro.middleware.sharded_certifier import make_certifier_service
from repro.middleware.systems import build_tashkent_mw_system


# ------------------------------------------------------------- linked chains

def test_install_stamps_old_head_in_place_and_links_chain():
    row = VersionedRow("k")
    first = RowVersion(created_version=1, values={"v": "a"})
    second = RowVersion(created_version=3, values={"v": "b"})
    row.install(first)
    row.install(second)
    # O(1) install: the very object installed first was stamped, not copied.
    assert first.deleted_version == 3
    assert row.latest() is second
    assert second.older is first
    assert [v.created_version for v in row.history()] == [3, 1]


def test_vacuum_keeps_versions_created_after_the_horizon():
    # A chain whose every version is newer than the horizon is invisible *at*
    # the horizon but visible to newer snapshots: nothing may be reclaimed.
    row = VersionedRow("k")
    row.install(RowVersion(created_version=5, values={"v": 1}))
    row.install(RowVersion(created_version=7, values={"v": 2}))
    assert row.vacuum(oldest_active_snapshot=4) == 0
    assert row.version_count() == 2
    assert row.version_for_snapshot(6).values["v"] == 1


def test_vacuum_drops_fully_dead_chains():
    row = VersionedRow("k")
    row.install(RowVersion(created_version=1, values={"v": 1}))
    row.install(RowVersion(created_version=2, values={"v": 2}))
    row.delete(3)
    assert row.vacuum(oldest_active_snapshot=3) == 2
    assert row.version_count() == 0
    assert row.latest() is None


def test_has_reclaimable_potential():
    row = VersionedRow("k")
    assert not row.has_reclaimable_potential
    row.install(RowVersion(created_version=1, values={}))
    assert not row.has_reclaimable_potential          # single live version
    row.install(RowVersion(created_version=2, values={}))
    assert row.has_reclaimable_potential              # superseded history
    row.vacuum(2)
    assert not row.has_reclaimable_potential
    row.delete(3)
    assert row.has_reclaimable_potential              # deleted head


def test_legacy_row_matches_linked_row_behaviour():
    linked, legacy = VersionedRow("k"), LegacyVersionedRow("k")
    for target in (linked, legacy):
        target.install(RowVersion(created_version=1, values={"v": 1}))
        target.install(RowVersion(created_version=4, values={"v": 2}))
        target.delete(6)
    for snapshot in range(8):
        left = linked.version_for_snapshot(snapshot)
        right = legacy.version_for_snapshot(snapshot)
        assert (left is None) == (right is None)
        if left is not None:
            assert left == right
    assert linked.vacuum(7) == legacy.vacuum(7) == 2
    assert linked.version_count() == legacy.version_count() == 0
    with pytest.raises(StorageError):
        legacy.install(RowVersion(created_version=1, values={}))
        legacy.install(RowVersion(created_version=1, values={}))


# ------------------------------------------------------- candidate index

def make_table():
    return Table(TableSchema("accounts", ("id", "balance"), "id"))


def test_clean_rows_never_enter_the_candidate_index():
    table = make_table()
    for key in range(100):
        table.install_insert(key, {"id": key, "balance": 0}, commit_version=key + 1)
    assert table.dead_candidate_count() == 0
    # A vacuum over a clean table visits nothing.
    assert table.vacuum(200) == 0
    assert table.vacuum_rows_visited == 0


def test_vacuum_visits_only_candidates_and_drops_dead_rows():
    table = make_table()
    for key in range(10):
        table.install_insert(key, {"id": key, "balance": 0}, commit_version=key + 1)
    table.install_update(3, {"balance": 1}, commit_version=11)
    table.install_delete(7, commit_version=12)
    assert table.dead_candidate_count() == 2
    removed = table.vacuum(12)
    assert removed == 2  # superseded version of 3 + the dead chain of 7
    assert table.vacuum_rows_visited == 2
    assert 7 not in table.keys()
    assert len(table) == 9
    assert table.rows_dropped == 1
    assert table.dead_candidate_count() == 0


def test_vacuum_respects_the_row_budget_and_resumes():
    table = make_table()
    for key in range(6):
        table.install_insert(key, {"id": key, "balance": 0}, commit_version=key + 1)
        table.install_update(key, {"balance": 1}, commit_version=key + 10)
    assert table.dead_candidate_count() == 6
    table.vacuum(100, max_rows=4)
    assert table.vacuum_rows_visited == 4
    assert table.dead_candidate_count() == 2
    table.vacuum(100, max_rows=4)
    assert table.dead_candidate_count() == 0
    assert table.versions_reclaimed == 6


def test_candidate_survives_when_horizon_blocks_reclamation():
    table = make_table()
    table.install_insert(1, {"id": 1, "balance": 0}, commit_version=1)
    table.install_update(1, {"balance": 1}, commit_version=5)
    # Horizon below the superseding version: nothing reclaimable yet, but the
    # row must stay indexed for the next pass.
    assert table.vacuum(2) == 0
    assert table.dead_candidate_count() == 1
    assert table.vacuum(5) == 1
    assert table.dead_candidate_count() == 0


def test_table_mvcc_stats_histogram():
    table = make_table()
    table.install_insert(1, {"id": 1, "balance": 0}, commit_version=1)
    table.install_insert(2, {"id": 2, "balance": 0}, commit_version=2)
    table.install_update(2, {"balance": 1}, commit_version=3)
    stats = table.mvcc_stats()
    assert stats.versions_installed == 3
    assert stats.live_rows == 2
    assert stats.max_chain_length == 2
    assert stats.chain_histogram == {1: 1, 2: 1}
    counters_only = table.mvcc_stats(include_chains=False)
    assert counters_only.max_chain_length == 0
    assert counters_only.chain_histogram == {}


def test_mvcc_and_janitor_stats_merge():
    left = MvccStats(versions_installed=2, max_chain_length=3,
                     chain_histogram={1: 2, 3: 1})
    right = MvccStats(versions_installed=1, max_chain_length=5,
                      chain_histogram={1: 1})
    merged = left.merge(right)
    assert merged.versions_installed == 3
    assert merged.max_chain_length == 5
    assert merged.chain_histogram == {1: 3, 3: 1}
    j = JanitorStats(runs=1, last_horizon=4).merge(JanitorStats(runs=2, last_horizon=9))
    assert j.runs == 3 and j.last_horizon == 9
    assert j.as_dict()["runs"] == 3


# ------------------------------------------------------- database-level vacuum

def make_database():
    db = Database("vac")
    db.create_table("kv", ["id", "value"])
    return db


def churn(db, key, rounds):
    for value in range(rounds):
        txn = db.begin()
        db.update(txn, "kv", key, value=value)
        db.commit(txn)


def test_database_vacuum_clamps_to_replication_horizon():
    db = make_database()
    txn = db.begin()
    db.insert(txn, "kv", 1, id=1, value=0)
    db.commit(txn)
    churn(db, 1, 9)  # versions 2..10 supersede version 1
    # Locally everything below version 10 is reclaimable, but a lagging
    # replica pins the horizon at 4: versions >= 4 must survive.
    reclaimed = db.vacuum(replication_horizon=4)
    assert db.last_vacuum_horizon == 4
    assert reclaimed == 3  # versions 1, 2, 3
    table = db.table("kv")
    for snapshot in range(4, 11):
        assert table.read(1, snapshot)["value"] == snapshot - 2
    # The horizon is min(local, replication): an old local snapshot clamps
    # too, however far ahead the replication horizon is.
    reader = db.begin()  # pins snapshot 10
    churn(db, 1, 3)      # versions 11..13
    assert db.vacuum(replication_horizon=10**9) == 6  # versions 4..9 only
    assert table.read(1, reader.snapshot_version)["value"] == 8
    db.commit(reader)
    assert db.vacuum() == 3  # reader gone: everything below 13 goes
    assert db.table("kv").mvcc_stats().max_chain_length == 1


def test_database_vacuum_budget_spans_tables():
    db = Database("multi")
    db.create_table("a", ["id", "v"])
    db.create_table("b", ["id", "v"])
    for table in ("a", "b"):
        for key in range(3):
            txn = db.begin()
            db.insert(txn, table, key, id=key, v=0)
            db.commit(txn)
            txn = db.begin()
            db.update(txn, table, key, v=1)
            db.commit(txn)
    assert db.dead_candidate_count() == 6
    db.vacuum(max_rows=4)
    assert db.dead_candidate_count() == 2
    db.vacuum(max_rows=4)
    assert db.dead_candidate_count() == 0
    assert db.mvcc_stats().versions_reclaimed == 6
    assert db.stats()["mvcc"]["versions_reclaimed"] == 6


def test_apply_writeset_installs_values_without_cloning():
    db = make_database()
    values = {"id": 5, "value": 42}
    writeset = WriteSet([WriteItem(table="kv", key=5, op=WriteOp.INSERT,
                                   values=values)])
    db.apply_writeset(writeset, version=3)
    installed = db.table("kv")._rows[5].latest().values
    assert installed is values  # by reference: the hot path clones nothing
    # Reads still hand out copies, so callers cannot corrupt the store.
    read = db.table("kv").read(5, 3)
    assert read == values and read is not values


# --------------------------------------------------------------- the janitor

def test_janitor_policy_validation():
    with pytest.raises(ConfigurationError):
        JanitorPolicy(vacuum_interval_ms=0)
    with pytest.raises(ConfigurationError):
        JanitorPolicy(vacuum_batch_rows=0)
    assert JanitorPolicy(vacuum_batch_rows=None).vacuum_batch_rows is None


def test_janitor_cadence():
    db = make_database()
    janitor = MaintenanceJanitor([db], policy=JanitorPolicy(vacuum_interval_ms=100))
    assert janitor.maybe_run(now_ms=0.0)      # first run is always due
    assert not janitor.maybe_run(now_ms=50.0)
    assert janitor.maybe_run(now_ms=100.0)
    assert janitor.stats.runs == 2
    assert janitor.stats.vacuum_passes == 2


def test_janitor_run_once_vacuums_and_collects_certifier_garbage():
    db = make_database()
    txn = db.begin()
    db.insert(txn, "kv", 1, id=1, value=0)
    db.commit(txn)
    churn(db, 1, 5)
    pruned_calls = []

    def fake_gc():
        pruned_calls.append(True)
        return 7

    janitor = MaintenanceJanitor(
        [db], replication_horizon=lambda: 6, certifier_gc=fake_gc)
    summary = janitor.run_once()
    assert summary["versions_reclaimed"] == 5
    assert summary["certifier_records_pruned"] == 7
    assert pruned_calls
    assert janitor.stats.last_horizon == 6
    assert janitor.stats.certifier_gc_runs == 1


def test_janitor_with_unknown_horizon_uses_local_snapshots_only():
    db = make_database()
    txn = db.begin()
    db.insert(txn, "kv", 1, id=1, value=0)
    db.commit(txn)
    churn(db, 1, 3)
    janitor = MaintenanceJanitor([db])  # standalone: no certifier
    summary = janitor.run_once()
    assert summary["versions_reclaimed"] == 3


# ------------------------------------------------- certifier horizon plumbing

@pytest.mark.parametrize("shards", [1, 2])
def test_replication_horizon_tracks_low_water_minus_headroom(shards):
    service = make_certifier_service(
        CertifierConfig(shards=shards, gc_headroom_versions=10))
    assert service.replication_horizon() == 0  # no replica reported yet
    service.register_replica("r1", 500)
    service.register_replica("r2", 300)
    assert service.replication_horizon() == 290
    service.register_replica("r2", 700)
    assert service.replication_horizon() == 490


def test_replication_horizon_never_negative():
    service = make_certifier_service(CertifierConfig(gc_headroom_versions=100))
    service.register_replica("r1", 5)
    assert service.replication_horizon() == 0


# ----------------------------------------------------- replicated system wiring

def test_config_validates_janitor_knobs():
    with pytest.raises(ConfigurationError):
        ReplicationConfig(vacuum_interval_ms=0.0)
    with pytest.raises(ConfigurationError):
        ReplicationConfig(vacuum_batch_rows=0)
    config = ReplicationConfig(vacuum_interval_ms=250.0, vacuum_batch_rows=64)
    assert config.vacuum_interval_ms == 250.0


def test_system_maintenance_bounds_chains_and_drops_dead_rows():
    system = build_tashkent_mw_system(
        2, vacuum_interval_ms=10.0, certifier_gc_headroom=0)
    system.create_table("kv", ["id", "value"])
    session = system.session(0)
    session.begin()
    for key in range(10):
        session.insert("kv", key, value=0)
    session.commit()
    # Hot-row churn grows a chain; insert+delete churn grows the key map.
    for value in range(30):
        session.begin()
        session.update("kv", 0, value=value)
        session.commit()
    for key in range(100, 120):
        session.begin()
        session.insert("kv", key, value=0)
        session.commit()
        session.begin()
        session.delete("kv", key)
        session.commit()
    system.refresh_all()  # replicas catch up and report their low-water mark
    assert system.run_maintenance()
    for replica in system.replicas:
        stats = replica.database.mvcc_stats()
        assert stats.max_chain_length == 1
        assert len(replica.database.table("kv")) == 10
    assert system.janitor().stats.versions_reclaimed > 0
    assert "janitor" in system.stats()
    assert system.replicas_consistent()


def test_replica_vacuum_respects_certifier_horizon():
    system = build_tashkent_mw_system(2, certifier_gc_headroom=0)
    system.create_table("kv", ["id", "value"])
    session = system.session(0)
    session.begin()
    session.insert("kv", 1, value=0)
    session.commit()
    for value in range(5):
        session.begin()
        session.update("kv", 1, value=value)
        session.commit()
    # Replica 1 never refreshed: its reported version pins the horizon, so
    # replica 0 may reclaim nothing yet.
    writer = system.replicas[0]
    assert writer.vacuum() == 0
    system.refresh_all()
    assert writer.vacuum() > 0
    assert writer.stats.vacuum_passes == 2
    assert writer.database.table("kv").mvcc_stats().max_chain_length == 1


def test_run_maintenance_respects_cadence_with_clock():
    system = build_tashkent_mw_system(1, vacuum_interval_ms=100.0)
    system.create_table("kv", ["id", "value"])
    assert system.run_maintenance(now_ms=0.0)
    assert not system.run_maintenance(now_ms=99.0)
    assert system.run_maintenance(now_ms=150.0)


# ----------------------------------------------------------------- sim stack

def test_sim_janitor_runs_when_configured():
    from repro.cluster.experiment import ExperimentConfig, run_experiment

    config = ExperimentConfig(
        system=SystemKind.TASHKENT_MW,
        workload=WorkloadName.TPC_B,
        num_replicas=2,
        vacuum_interval_ms=50.0,
        warmup_ms=50.0,
        measure_ms=300.0,
    )
    result = run_experiment(config)
    assert result.utilization["janitor_runs"] >= 3
    assert result.utilization["janitor_vacuum_passes"] >= 6


def test_sim_janitor_off_by_default():
    from repro.cluster.experiment import ExperimentConfig, run_experiment

    config = ExperimentConfig(
        system=SystemKind.TASHKENT_MW,
        workload=WorkloadName.TPC_B,
        num_replicas=1,
        warmup_ms=50.0,
        measure_ms=200.0,
    )
    result = run_experiment(config)
    assert "janitor_runs" not in result.utilization
