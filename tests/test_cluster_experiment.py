"""Tests for the simulated cluster models and the experiment runner.

These use deliberately small windows and replica counts so the whole file
runs in a few seconds; the full-size sweeps live in ``benchmarks/``.
"""

import pytest

from repro.analysis.report import render_figure
from repro.analysis.results import crossover_replicas, summarize_sweep, sweep_to_table
from repro.core.config import SystemKind, WorkloadName
from repro.cluster.experiment import ExperimentConfig, run_experiment
from repro.cluster.sweeps import run_replica_sweep
from repro.errors import ConfigurationError

FAST = dict(warmup_ms=200.0, measure_ms=800.0)


def run(system, workload=WorkloadName.ALL_UPDATES, replicas=2, **overrides):
    config = ExperimentConfig(system=system, workload=workload, num_replicas=replicas,
                              **{**FAST, **overrides})
    return run_experiment(config)


# ----------------------------------------------------------------- configuration

def test_experiment_config_validation():
    with pytest.raises(ConfigurationError):
        ExperimentConfig(num_replicas=0)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(system=SystemKind.STANDALONE, num_replicas=3)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(measure_ms=0)
    config = ExperimentConfig()
    assert config.with_overrides(num_replicas=4).num_replicas == 4


# ----------------------------------------------------------------- single points

def test_standalone_groups_commits_and_beats_serial_commits():
    standalone = run(SystemKind.STANDALONE, replicas=1)
    base = run(SystemKind.BASE, replicas=1)
    assert standalone.throughput_tps > 2 * base.throughput_tps
    assert standalone.completed_transactions > 0
    assert base.replica_fsyncs > 0


def test_tashkent_mw_replicas_never_fsync():
    result = run(SystemKind.TASHKENT_MW, replicas=2)
    assert result.replica_fsyncs == 0
    assert result.certifier_fsyncs > 0
    assert result.writesets_per_fsync >= 1.0


def test_base_needs_two_fsyncs_per_local_commit_with_remote_writesets():
    result = run(SystemKind.BASE, replicas=2)
    committed = result.throughput_tps * result.config.measure_ms / 1000.0
    assert result.replica_fsyncs >= 1.5 * committed  # ~2 fsyncs per commit


def test_deterministic_given_seed():
    a = run(SystemKind.TASHKENT_MW, replicas=2, seed=11)
    b = run(SystemKind.TASHKENT_MW, replicas=2, seed=11)
    assert a.throughput_tps == b.throughput_tps
    assert a.mean_response_ms == b.mean_response_ms


def test_forced_abort_rate_reduces_goodput():
    clean = run(SystemKind.TASHKENT_MW, replicas=2)
    lossy = run(SystemKind.TASHKENT_MW, replicas=2, forced_abort_rate=0.4)
    assert lossy.abort_rate > 0.25
    assert lossy.throughput_tps < clean.throughput_tps
    assert lossy.offered_tps > lossy.throughput_tps


def test_dedicated_io_never_hurts():
    shared = run(SystemKind.BASE, workload=WorkloadName.TPC_B, replicas=2)
    dedicated = run(SystemKind.BASE, workload=WorkloadName.TPC_B, replicas=2, dedicated_io=True)
    assert dedicated.throughput_tps >= 0.9 * shared.throughput_tps


def test_tpcw_readonly_transactions_dominate():
    result = run(SystemKind.TASHKENT_MW, workload=WorkloadName.TPC_W, replicas=2,
                 warmup_ms=300.0, measure_ms=1500.0)
    assert result.readonly_response_ms > 0
    assert result.update_response_ms > 0
    assert result.abort_rate < 0.05


def test_api_model_reports_artificial_conflicts_on_tpcb():
    result = run(SystemKind.TASHKENT_API, workload=WorkloadName.TPC_B, replicas=3,
                 warmup_ms=300.0, measure_ms=1200.0)
    assert "artificial_conflict_rate" in result.utilization
    assert result.utilization["remote_groups_planned"] > 0


# ----------------------------------------------------------------- headline comparison

def test_tashkent_systems_beat_base_at_moderate_scale():
    base = run(SystemKind.BASE, replicas=4)
    mw = run(SystemKind.TASHKENT_MW, replicas=4)
    api = run(SystemKind.TASHKENT_API, replicas=4)
    assert mw.throughput_tps > 2.0 * base.throughput_tps
    assert api.throughput_tps > 1.2 * base.throughput_tps
    assert mw.mean_response_ms < base.mean_response_ms
    assert api.mean_response_ms < base.mean_response_ms


# ----------------------------------------------------------------- sweeps and analysis

def test_sweep_and_analysis_helpers():
    sweep = run_replica_sweep(
        WorkloadName.ALL_UPDATES,
        systems=(SystemKind.BASE, SystemKind.TASHKENT_MW, SystemKind.TASHKENT_API),
        replica_counts=(1, 3),
        warmup_ms=200.0,
        measure_ms=600.0,
    )
    assert len(sweep.points) == 6
    assert len(sweep.curve(SystemKind.BASE)) == 2
    assert sweep.max_throughput(SystemKind.TASHKENT_MW) > 0
    assert sweep.speedup_over(SystemKind.TASHKENT_MW, SystemKind.BASE, num_replicas=3) > 1.5

    summary = summarize_sweep(sweep)
    assert summary.num_replicas == 3
    assert summary.mw_speedup > 1.5

    table = sweep_to_table(sweep)
    assert len(table) == 6
    assert set(table.column("system")) == {"base", "tashkent-mw", "tashkent-api"}
    assert len(table.filter(system="base")) == 2

    crossover = crossover_replicas(sweep, SystemKind.TASHKENT_MW, SystemKind.BASE)
    assert crossover in (1, 3)

    figure = render_figure(sweep, metric="throughput")
    assert "tashMW" in figure and "base" in figure
    response_figure = render_figure(sweep, metric="response")
    assert "response" in response_figure
