"""Tests for the certifier service (log durability + forced aborts)."""

import pytest

from repro.core.certification import CertificationRequest
from repro.core.writeset import WriteSet, make_writeset
from repro.middleware.certifier import CertifierConfig, CertifierService


def request(keys, start=0, replica_version=0, replica="replica-0"):
    return CertificationRequest(
        tx_start_version=start,
        writeset=make_writeset([("t", k) for k in keys]),
        replica_version=replica_version,
        origin_replica=replica,
    )


def test_commit_decisions_are_durable_before_release():
    service = CertifierService()
    result = service.certify(request(["a"]))
    assert result.committed
    assert service.log.durable_version == 1
    assert service.fsync_count == 1


def test_durability_disabled_skips_the_critical_path_flush():
    service = CertifierService(CertifierConfig(durability_enabled=False))
    result = service.certify(request(["a"]))
    assert result.committed
    assert service.fsync_count == 0
    assert service.log.durable_version == 0
    # A later explicit flush (off the critical path) makes it durable.
    assert service.flush() == 1
    assert service.log.durable_version == 1


def test_flush_groups_all_pending_writesets():
    service = CertifierService(CertifierConfig(durability_enabled=False))
    for key in "abcde":
        service.certify(request([key]))
    flushed = service.flush()
    assert flushed == 5
    assert service.fsync_count == 1
    assert service.writesets_per_fsync == pytest.approx(5.0)


def test_aborted_requests_write_nothing():
    service = CertifierService()
    service.certify(request(["x"]))
    fsyncs = service.fsync_count
    result = service.certify(request(["x"]))
    assert not result.committed
    assert service.fsync_count == fsyncs


def test_forced_abort_rate_is_deterministic_per_seed():
    config = CertifierConfig(forced_abort_rate=0.5, rng_seed=7)
    outcomes_a = [
        CertifierService(config).certify(request([f"k{i}"])).committed for i in range(20)
    ]
    outcomes_b = [
        CertifierService(config).certify(request([f"k{i}"])).committed for i in range(20)
    ]
    assert outcomes_a == outcomes_b


def test_forced_abort_rate_roughly_matches_target():
    service = CertifierService(CertifierConfig(forced_abort_rate=0.4, rng_seed=3))
    total = 400
    aborted = 0
    for i in range(total):
        result = service.certify(request([f"key-{i}"]))
        if not result.committed:
            aborted += 1
            assert result.forced_abort
    assert 0.3 < aborted / total < 0.5


def test_fetch_remote_writesets_serves_staleness_refresh():
    service = CertifierService()
    for key in "abc":
        service.certify(request([key]))
    remote = service.fetch_remote_writesets(1)
    assert [info.commit_version for info in remote] == [2, 3]


def test_stats_expose_paper_metrics():
    service = CertifierService()
    service.certify(request(["a"]))
    stats = service.stats()
    assert stats["fsyncs"] == 1.0
    assert stats["commits"] == 1
    assert stats["writesets_per_fsync"] == pytest.approx(1.0)


def test_automatic_gc_bounds_the_log():
    service = CertifierService(CertifierConfig(
        gc_interval_requests=10, gc_headroom_versions=5))
    for i in range(100):
        version = service.system_version
        service.certify(request([f"k{i}"], start=version, replica_version=version))
    # The replica reported up to version 99; GC keeps the headroom suffix.
    assert service.log.last_version == 100
    assert service.log.pruned_version > 0
    assert service.log.retained_count <= 100 - service.log.pruned_version
    assert service.log.pruned_version >= 100 - 5 - 10 - 1
    # Decisions above the horizon are unaffected.
    version = service.system_version
    result = service.certify(request(["k99"], start=version - 1, replica_version=version))
    assert not result.committed  # k99 committed at version 100
    assert result.conflicting_version == 100


def test_gc_still_runs_with_durability_disabled():
    """Regression: tashAPInoCERT (no critical-path flush) must still GC.

    Without the lazy flush on the GC tick, durable_version would stay 0 and
    prune_to would clamp every collection to a no-op forever.
    """
    service = CertifierService(CertifierConfig(
        durability_enabled=False, gc_interval_requests=10, gc_headroom_versions=0))
    for i in range(40):
        version = service.system_version
        service.certify(request([f"k{i}"], start=version, replica_version=version))
    assert service.log.durable_version > 0  # lazily flushed off the critical path
    assert service.log.pruned_version > 0  # ...which unblocks GC
    assert service.log.retained_count < 40


def test_idle_registered_replica_blocks_gc():
    service = CertifierService(CertifierConfig(
        gc_interval_requests=5, gc_headroom_versions=0))
    service.register_replica("idle-replica")  # never advances past 0
    for i in range(50):
        version = service.system_version
        service.certify(request([f"k{i}"], start=version, replica_version=version))
    assert service.log.pruned_version == 0  # the idle replica pins the log
    service.disconnect_replica("idle-replica")
    service.collect_garbage()
    assert service.log.pruned_version > 0
