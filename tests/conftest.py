"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import signal
import socket
import sys
from pathlib import Path

import pytest

# Allow running the tests without installing the package first.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.writeset import WriteSet, make_writeset  # noqa: E402
from repro.engine.database import Database  # noqa: E402

# -- live-cluster test guard rails -------------------------------------------

#: Per-test wall-clock budget for ``live``-marked tests.  A hung child (a
#: wedged node nobody restarted, a lost handshake) fails the test instead of
#: hanging the suite; generous because a live test boots several interpreters.
LIVE_TEST_TIMEOUT_S = 120


def _tcp_available() -> bool:
    """Whether this environment lets us bind a localhost TCP listener."""
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.bind(("127.0.0.1", 0))
        return True
    except OSError:
        return False


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """SIGALRM watchdog around every ``live``-marked test.

    The live suite supervises real subprocesses; if one wedges and the
    choreography misses it, the blocking socket call in the test would wait
    out its full socket timeout chain.  The alarm converts that into a
    prompt, attributable failure (harness teardown still runs and reaps the
    children).  Hand-rolled because the environment has no pytest-timeout.
    """
    live = item.get_closest_marker("live") is not None
    use_alarm = live and hasattr(signal, "SIGALRM")
    if use_alarm:
        def _expired(signum, frame):
            raise TimeoutError(
                f"live test exceeded its {LIVE_TEST_TIMEOUT_S}s watchdog"
            )

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.alarm(LIVE_TEST_TIMEOUT_S)
    try:
        yield
    finally:
        if use_alarm:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)


def pytest_collection_modifyitems(config, items):
    if _tcp_available():
        return
    skip = pytest.mark.skip(reason="cannot bind localhost TCP sockets here")
    for item in items:
        if item.get_closest_marker("live") is not None:
            item.add_marker(skip)


@pytest.fixture
def accounts_db() -> Database:
    """A small database with an ``accounts`` table and ten funded rows."""
    db = Database("accounts-db")
    db.create_table("accounts", ["id", "balance", "owner"])
    txn = db.begin()
    for i in range(10):
        db.insert(txn, "accounts", i, id=i, balance=100, owner=f"user-{i}")
    db.commit(txn)
    return db


@pytest.fixture
def empty_db() -> Database:
    db = Database("empty-db")
    db.create_table("items", ["id", "value"])
    return db


def ws(*keys: object, table: str = "t") -> WriteSet:
    """Shorthand writeset touching ``keys`` in ``table``."""
    return make_writeset([(table, key) for key in keys])
