"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests without installing the package first.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.writeset import WriteSet, make_writeset  # noqa: E402
from repro.engine.database import Database  # noqa: E402


@pytest.fixture
def accounts_db() -> Database:
    """A small database with an ``accounts`` table and ten funded rows."""
    db = Database("accounts-db")
    db.create_table("accounts", ["id", "balance", "owner"])
    txn = db.begin()
    for i in range(10):
        db.insert(txn, "accounts", i, id=i, balance=100, owner=f"user-{i}")
    db.commit(txn)
    return db


@pytest.fixture
def empty_db() -> Database:
    db = Database("empty-db")
    db.create_table("items", ["id", "value"])
    return db


def ws(*keys: object, table: str = "t") -> WriteSet:
    """Shorthand writeset touching ``keys`` in ``table``."""
    return make_writeset([(table, key) for key in keys])
