"""Unit tests for group-commit batching and the commit sequencer."""

import pytest

from repro.core.group_commit import GroupCommitBatcher, GroupCommitStats
from repro.core.ordering import CommitSequencer
from repro.errors import ConfigurationError, InvalidTransactionState


# ----------------------------------------------------------------- group commit

def test_batcher_groups_everything_pending_into_one_flush():
    batcher = GroupCommitBatcher()
    for i in range(5):
        batcher.enqueue(i)
    batch = batcher.take_batch()
    assert batch == [0, 1, 2, 3, 4]
    batcher.complete_batch()
    assert batcher.stats.flushes == 1
    assert batcher.stats.average_batch_size == 5


def test_records_enqueued_during_flush_wait_for_next_flush():
    batcher = GroupCommitBatcher()
    batcher.enqueue("a")
    first = batcher.take_batch()
    # "b" arrives while the fsync for the first batch is in flight.
    batcher.enqueue("b")
    assert first == ["a"]
    batcher.complete_batch()
    second = batcher.take_batch()
    assert second == ["b"]
    batcher.complete_batch()
    assert batcher.stats.flushes == 2


def test_take_batch_twice_without_completion_is_an_error():
    batcher = GroupCommitBatcher()
    batcher.enqueue(1)
    batcher.take_batch()
    with pytest.raises(RuntimeError):
        batcher.take_batch()


def test_abandon_batch_requeues_at_the_head():
    batcher = GroupCommitBatcher()
    batcher.enqueue_many([1, 2])
    batcher.take_batch()
    batcher.enqueue(3)
    batcher.abandon_batch()
    assert batcher.take_batch() == [1, 2, 3]


def test_max_batch_size_limits_each_flush():
    batcher = GroupCommitBatcher(max_batch_size=2)
    batcher.enqueue_many([1, 2, 3])
    assert batcher.take_batch() == [1, 2]
    batcher.complete_batch()
    assert batcher.take_batch() == [3]


def test_stats_merge_and_largest_batch():
    a = GroupCommitStats()
    b = GroupCommitStats()
    a.record_flush(3)
    b.record_flush(5)
    a.merge(b)
    assert a.flushes == 2
    assert a.records_flushed == 8
    assert a.largest_batch == 5
    assert a.average_batch_size == 4


# ----------------------------------------------------------------- commit sequencer

def test_sequencer_announces_in_order_even_if_durable_out_of_order():
    announced = []
    sequencer = CommitSequencer()
    sequencer.register(1, lambda: announced.append(1))
    sequencer.register(2, lambda: announced.append(2))
    # Version 2's record hits the disk first: nothing can be announced yet.
    assert sequencer.mark_durable(2) == []
    assert announced == []
    # Version 1 becoming durable releases both, in order.
    assert sequencer.mark_durable(1) == [1, 2]
    assert announced == [1, 2]
    assert sequencer.announced_version == 2


def test_sequencer_rejects_duplicate_or_stale_registrations():
    sequencer = CommitSequencer()
    sequencer.register(1)
    with pytest.raises(ConfigurationError):
        sequencer.register(1)
    sequencer.mark_durable(1)
    with pytest.raises(ConfigurationError):
        sequencer.register(1)


def test_sequencer_mark_durable_requires_registration():
    sequencer = CommitSequencer()
    with pytest.raises(InvalidTransactionState):
        sequencer.mark_durable(3)


def test_sequencer_detects_api_abuse_deadlock():
    # COMMIT 9 without ever providing COMMIT 1-8 (paper Section 5.2).
    sequencer = CommitSequencer()
    sequencer.register(9)
    sequencer.mark_durable(9)
    assert sequencer.would_deadlock()
    assert sequencer.blocked_sequences() == [9]
    # Registering the missing sequences clears the abuse condition.
    sequencer.register(1)
    assert not sequencer.would_deadlock()


def test_register_and_mark_durable_shortcut():
    sequencer = CommitSequencer()
    announced = sequencer.register_and_mark_durable(1)
    assert announced == [1]
    assert sequencer.waiting_count == 0
    assert not sequencer.is_waiting_for(1)
