"""Unit tests for the live process harness: ports, handshakes, reaping.

These are the anti-flake guarantees the rest of the live suite stands on:
kernel-assigned ports announced via stdout handshake (no hardcoded ports,
no sleep-based readiness), restart pinned to the dead incarnation's port,
and context-manager teardown that provably leaves no orphan processes.
"""

from __future__ import annotations

import pytest

from repro.live.harness import HarnessError, ProcessHarness
from repro.live.wal import read_wal_batches
from repro.live.wire import WireClient

pytestmark = pytest.mark.live


def test_twenty_harnesses_boot_concurrently_without_port_collisions(tmp_path):
    """Satellite: 20 simultaneous harnesses, zero port coordination.

    Every node binds to port 0 and reports the kernel's choice through its
    handshake, so concurrent harnesses can never collide.  All 20 children
    are spawned before any readiness wait, making the boots truly
    concurrent.
    """
    harnesses = [ProcessHarness(run_dir=tmp_path / f"run-{i}") for i in range(20)]
    try:
        handles = [
            harness.spawn("certifier-shard", "shard",
                          ["--shard-id", "0", "--wal", "shard.wal"],
                          wait_ready=False)
            for harness in harnesses
        ]
        ports = [handle.wait_ready(timeout_s=60)["port"] for handle in handles]
        assert len(set(ports)) == 20, f"port collision among {sorted(ports)}"
        for handle in handles:
            with WireClient("127.0.0.1", handle.port, name="probe") as probe:
                assert probe.call("ping")["role"] == "certifier-shard"
    finally:
        for harness in harnesses:
            harness.reap_all()
    for harness in harnesses:
        harness.assert_no_orphans()


def test_handshake_reports_bound_port_and_pid(tmp_path):
    with ProcessHarness(run_dir=tmp_path) as harness:
        handle = harness.spawn("certifier-shard", "s0",
                               ["--shard-id", "0", "--wal", "s0.wal"])
        info = handle.ready_info
        assert info["role"] == "certifier-shard"
        assert info["name"] == "s0"
        assert info["port"] == handle.port and handle.port > 0
        assert info["pid"] == handle.pid


def test_restart_pins_previous_port_and_wal_survives(tmp_path):
    """kill -9, restart: same port, WAL replayed, duplicate batch deduped."""
    with ProcessHarness(run_dir=tmp_path) as harness:
        handle = harness.spawn("certifier-shard", "s0",
                               ["--shard-id", "0", "--wal", "s0.wal"])
        first_port = handle.port
        with WireClient("127.0.0.1", first_port, name="probe") as probe:
            probe.call("wal_append", seq=1, payloads=["aa"])
            probe.call("wal_append", seq=2, payloads=["bb", "cc"])

        handle.kill()
        assert not handle.alive and handle.poll() is not None
        handle.restart()
        assert handle.alive and handle.port == first_port

        with WireClient("127.0.0.1", first_port, name="probe") as probe:
            stats = probe.call("wal_stats")
            assert stats["last_seq"] == 2 and stats["batches"] == 2
            # A resend of an already-fsynced batch is acknowledged, not
            # re-written: the idempotence the crash tests depend on.
            assert probe.call("wal_append", seq=2, payloads=["bb", "cc"])["applied"] is False
            assert probe.call("wal_stats")["duplicate_batches_skipped"] == 1

        batches = read_wal_batches(tmp_path / "s0.wal")
        assert [b["seq"] for b in batches] == [1, 2]


def test_exit_reaps_children_and_asserts_no_orphans(tmp_path):
    with ProcessHarness(run_dir=tmp_path) as harness:
        handles = [
            harness.spawn("certifier-shard", f"s{i}",
                          ["--shard-id", str(i), "--wal", f"s{i}.wal"])
            for i in range(3)
        ]
        assert all(handle.alive for handle in handles)
    # __exit__ ran reap_all + assert_no_orphans; every child must be gone.
    assert all(not handle.alive for handle in handles)
    assert harness.poll_all() == {f"s{i}": handles[i].poll() for i in range(3)}
    harness.assert_no_orphans()


def test_wait_ready_fails_fast_when_the_node_dies_on_boot(tmp_path):
    with ProcessHarness(run_dir=tmp_path) as harness:
        with pytest.raises(HarnessError, match="exited"):
            # An unknown role makes argparse exit(2) before any handshake.
            harness.spawn("no-such-role", "bad")


def test_captured_logs_are_collected_per_node(tmp_path):
    with ProcessHarness(run_dir=tmp_path) as harness:
        harness.spawn("certifier-shard", "s0", ["--shard-id", "0", "--wal", "s0.wal"])
        logs = harness.collect_logs()
        out, err = logs["s0"]
        assert out.exists() and "REPRO-LIVE-READY" in out.read_text()
