"""Unit tests for the write-ahead log, log devices and group commit."""

import pytest

from repro.core.writeset import make_writeset
from repro.engine.log_device import CountingLogDevice, FileLogDevice
from repro.engine.wal import WalRecord, WriteAheadLog
from repro.errors import RecoveryError


def record(version, key="k"):
    return WalRecord(commit_version=version, txn_id=version, writeset=make_writeset([("t", key)]))


def test_synchronous_commit_issues_one_sync_per_append():
    wal = WriteAheadLog(synchronous_commit=True)
    assert wal.append(record(1)) is True
    assert wal.append(record(2)) is True
    assert wal.sync_count == 2
    assert wal.last_durable_version() == 2
    assert wal.records_per_sync == pytest.approx(1.0)


def test_asynchronous_commit_defers_durability():
    wal = WriteAheadLog(synchronous_commit=False)
    assert wal.append(record(1)) is False
    assert wal.sync_count == 0
    assert wal.durable_records == []
    wal.flush()
    assert wal.sync_count == 1
    assert wal.last_durable_version() == 1


def test_group_commit_batches_pending_records_into_one_sync():
    wal = WriteAheadLog(synchronous_commit=False)
    for version in range(1, 6):
        wal.append(record(version))
    wal.flush()
    assert wal.sync_count == 1
    assert wal.records_per_sync == pytest.approx(5.0)


def test_append_many_groups_ordered_commits():
    wal = WriteAheadLog(synchronous_commit=True)
    wal.append_many([record(1), record(2), record(3)])
    assert wal.sync_count == 1
    assert wal.last_durable_version() == 3


def test_set_synchronous_commit_switch():
    wal = WriteAheadLog(synchronous_commit=True)
    wal.set_synchronous_commit(False)
    wal.append(record(1))
    assert wal.sync_count == 0
    wal.set_synchronous_commit(True)
    wal.append(record(2))
    assert wal.sync_count == 1
    assert wal.last_durable_version() == 2


def test_crash_loses_only_unflushed_records():
    wal = WriteAheadLog(synchronous_commit=False)
    wal.append(record(1))
    wal.flush()
    wal.append(record(2))
    lost = wal.simulate_crash()
    assert lost == 1
    assert [r.commit_version for r in wal.durable_records] == [1]


def test_checkpoint_records_are_excluded_from_recovery_replay():
    wal = WriteAheadLog(synchronous_commit=True)
    wal.append(record(1))
    wal.checkpoint(1)
    wal.append(record(2))
    recovery = wal.records_for_recovery(after_version=0)
    assert [r.commit_version for r in recovery] == [1, 2]
    assert all(not r.is_checkpoint for r in recovery)
    recovery_after = wal.records_for_recovery(after_version=1)
    assert [r.commit_version for r in recovery_after] == [2]


def test_wal_record_payload_round_trip():
    original = WalRecord(
        commit_version=7,
        txn_id=3,
        writeset=make_writeset([("accounts", 1), ("tellers", 2)]),
    )
    restored = WalRecord.from_payload(original.to_payload())
    assert restored.commit_version == 7
    assert restored.txn_id == 3
    assert restored.writeset.item_ids == original.writeset.item_ids


def test_wal_record_rejects_corrupt_payload():
    with pytest.raises(RecoveryError):
        WalRecord.from_payload(b"\x00\x01 not json")


def test_counting_device_separates_durable_and_pending():
    device = CountingLogDevice()
    device.append(b"a")
    assert device.pending_payloads == [b"a"]
    device.sync()
    device.append(b"b")
    assert device.durable_payloads == [b"a"]
    assert device.simulate_crash() == 1
    assert device.pending_payloads == []
    assert device.bytes_written == 2


def test_file_device_appends_and_reads_back(tmp_path):
    path = tmp_path / "wal" / "log.bin"
    with FileLogDevice(str(path)) as device:
        device.append(b"one")
        device.append(b"two")
        device.sync()
        assert device.sync_count == 1
        assert device.read_lines() == [b"one", b"two"]
