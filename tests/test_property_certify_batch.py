"""Property: ``certify_batch`` is sequentially equivalent (hypothesis).

The live scheduler's group-certification round promises that batching
coalesces only the *IO* — decisions, commit versions, abort causes and
remote writeset windows must be exactly what a ``for request: certify(...)``
loop would produce (``docs`` of :meth:`ShardedCertifier.certify_batch`).
This property drives the same randomly generated request stream through two
identically configured sharded certifiers — one certifying strictly one at
a time, one in randomly sized rounds — and asserts every outcome is
bit-equivalent, across shard counts 1..3.

Request construction mirrors the live arrival pattern: every request of one
round is built against the pre-round certifier state (concurrent clients
snapshot their versions before any batchmate commits), which is exactly the
interleaving the batch must serialize.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.certification import CertificationRequest, CertificationResult
from repro.core.sharding import ShardedCertifier
from repro.core.writeset import make_writeset
from repro.errors import ReproError

# A small key alphabet keeps genuine write-write conflicts frequent.
key_lists = st.lists(st.integers(min_value=0, max_value=6),
                     min_size=1, max_size=4)
#: One request spec: row keys + how stale the client's snapshot is.
request_specs = st.tuples(key_lists, st.integers(min_value=0, max_value=3))
#: One round: the requests that arrive concurrently (batch size 1..5).
rounds = st.lists(request_specs, min_size=1, max_size=5)


def build_round(certifier: ShardedCertifier, specs) -> list[CertificationRequest]:
    """Construct one round's requests against the pre-round state."""
    current = certifier.system_version.version
    return [
        CertificationRequest(
            tx_start_version=max(0, current - staleness),
            writeset=make_writeset([("t", key) for key in keys]),
            replica_version=current,
            origin_replica=f"r{i % 2}",
        )
        for i, (keys, staleness) in enumerate(specs)
    ]


def fingerprint(outcome: CertificationResult | ReproError) -> tuple:
    """Everything the caller can observe about one certification outcome."""
    if isinstance(outcome, ReproError):
        return ("error", type(outcome).__name__)
    return (
        outcome.decision.name,
        outcome.tx_commit_version,
        outcome.forced_abort,
        outcome.conflicting_version,
        tuple(
            (info.commit_version, info.origin_replica,
             info.conflict_free_back_to,
             tuple(sorted((item.table, item.key, item.op.name)
                          for item in info.writeset)))
            for info in outcome.remote_writesets
        ),
    )


@given(shards=st.sampled_from([1, 2, 3]),
       stream=st.lists(rounds, min_size=0, max_size=8))
@settings(max_examples=80, deadline=None)
def test_certify_batch_is_sequentially_equivalent(shards, stream):
    sequential = ShardedCertifier(shards)
    batched = ShardedCertifier(shards)
    for specs in stream:
        seq_requests = build_round(sequential, specs)
        bat_requests = build_round(batched, specs)

        seq_outcomes: list[CertificationResult | ReproError] = []
        for request in seq_requests:
            try:
                seq_outcomes.append(sequential.certify(request))
            except ReproError as exc:
                seq_outcomes.append(exc)
        bat_outcomes = batched.certify_batch(bat_requests)

        assert [fingerprint(o) for o in seq_outcomes] == [
            fingerprint(o) for o in bat_outcomes]
        # The logs stay in lockstep too — next rounds diverge otherwise.
        assert (sequential.system_version.version
                == batched.system_version.version)
