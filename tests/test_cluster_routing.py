"""Simulated-cluster experiments in routed mode.

The simulation's routed clients share one pool and ask the cluster
scheduler for a replica per transaction, instead of the paper's static
pinning.  These tests assert the sim-level properties the benchmark builds
on: routed experiments run deterministically, spread load, expose the
staleness self-conflict gap between round-robin and conflict-aware routing
on the bursty AllUpdates axis, and surface admission control in the
metrics.
"""

from __future__ import annotations

import pytest

from repro import ExperimentConfig, SystemKind, WorkloadName, run_experiment
from repro.errors import ConfigurationError

FAST = dict(warmup_ms=200.0, measure_ms=800.0)


def run(**overrides):
    params = {**FAST, **overrides}
    return run_experiment(ExperimentConfig(**params))


def test_routed_experiment_runs_and_uses_every_replica():
    result = run(num_replicas=3, routing="round-robin")
    assert result.completed_transactions > 0
    assert set(result.per_replica_tps) == {"replica-0", "replica-1", "replica-2"}
    assert all(tps > 0 for tps in result.per_replica_tps.values())


def test_routed_results_are_deterministic():
    config = ExperimentConfig(num_replicas=3, routing="conflict-aware",
                              workload_options={"update_burst": 2}, **FAST)
    first = run_experiment(config)
    second = run_experiment(config)
    assert first.throughput_tps == second.throughput_tps
    assert first.abort_rate == second.abort_rate


def test_conflict_aware_routing_beats_round_robin_on_bursty_updates():
    """The sim-scale version of the benchmark's acceptance property."""
    options = {"update_burst": 3}
    round_robin = run(num_replicas=4, routing="round-robin",
                      workload_options=options)
    affinity = run(num_replicas=4, routing="conflict-aware",
                   workload_options=options)
    assert round_robin.abort_rate > affinity.abort_rate
    assert affinity.abort_rate <= 0.01


def test_pinned_mode_is_untouched_by_the_burst_axis():
    """Bursty rewrites never conflict under static pinning (the replica
    that executed a client's previous commit has always observed it)."""
    pinned = run(num_replicas=4, workload_options={"update_burst": 3})
    assert pinned.abort_rate == 0.0


def test_update_burst_default_matches_seed_behaviour():
    baseline = run(num_replicas=2)
    explicit = run(num_replicas=2, workload_options={"update_burst": 1})
    assert baseline.throughput_tps == explicit.throughput_tps
    assert baseline.abort_rate == explicit.abort_rate


def test_admission_limit_queues_and_times_out_in_simulation():
    # One multiprogramming slot per replica with 10 clients per replica:
    # most submissions queue; the tight deadline converts a measurable share
    # into admission-timeout aborts recorded against the balancer node.
    result = run(num_replicas=2, routing="least-loaded",
                 multiprogramming_limit=1, admission_timeout_ms=5.0)
    stats = result.utilization
    assert stats["scheduler_queued"] > 0
    assert stats["scheduler_admission_timeouts"] > 0
    assert result.abort_rate > 0.0
    # Committed work still flows: admission control throttles, not stops.
    assert result.throughput_tps > 0


def test_routed_tpcb_experiment_runs():
    result = run(workload=WorkloadName.TPC_B, num_replicas=2,
                 routing="conflict-aware")
    assert result.completed_transactions > 0
    assert result.throughput_tps > 0


def test_routing_rejected_for_standalone():
    with pytest.raises(ConfigurationError):
        ExperimentConfig(system=SystemKind.STANDALONE, routing="round-robin")


def test_scheduler_imbalance_metric_reported():
    result = run(num_replicas=3, routing="least-loaded")
    assert result.utilization.get("scheduler_routed_imbalance", 0.0) >= 1.0
