"""Property-based tests for the MVCC vacuum path.

Three invariants guard the fast-path storage layout:

* **Vacuum equivalence** — an incremental, horizon-clamped vacuum never
  changes what any snapshot at or above the horizon can read.  Two
  databases driven by identical certified writesets — one vacuumed at
  random points with random horizons, one never vacuumed — must stay
  byte-identical at every still-serviceable snapshot.
* **Chain boundedness** — with maintenance running, version chains do not
  grow with history: sustained apply plus vacuum keeps every chain at its
  live suffix.
* **Layout oracle** — the O(1) linked-chain row and the seed's list-based
  row are observationally equivalent under any install/delete/vacuum
  sequence.
"""

from hypothesis import given, settings, strategies as st

from repro.core.writeset import WriteSet
from repro.engine.database import Database
from repro.engine.rows import LegacyVersionedRow, RowVersion, VersionedRow
from repro.middleware.systems import build_tashkent_mw_system

keys = st.integers(min_value=0, max_value=5)
values = st.integers(min_value=-1000, max_value=1000)
#: (key, value, delete?) — the concrete op is decided against the model
#: state so every generated writeset is valid for the apply path.
ops = st.lists(st.tuples(keys, values, st.booleans()), min_size=1, max_size=40)


def _build_db(name: str) -> Database:
    db = Database(name, synchronous_commit=False)
    db.create_table("kv", ["id", "value"])
    return db


def _writesets(operations) -> list[WriteSet]:
    """Turn abstract ops into a valid writeset-per-commit sequence."""
    present: set[int] = set()
    writesets: list[WriteSet] = []
    for key, value, delete in operations:
        ws = WriteSet()
        if key in present and delete:
            ws.add_delete("kv", key)
            present.discard(key)
        elif key in present:
            ws.add_update("kv", key, value=value)
        else:
            ws.add_insert("kv", key, id=key, value=value)
            present.add(key)
        writesets.append(ws)
    return writesets


@given(
    operations=ops,
    vacuum_points=st.sets(st.integers(min_value=1, max_value=40), max_size=6),
    horizon_lag=st.integers(min_value=0, max_value=10),
)
@settings(max_examples=60, deadline=None)
def test_vacuum_never_changes_reads_at_snapshots_above_the_horizon(
    operations, vacuum_points, horizon_lag
):
    """Reads at every snapshot >= the highest vacuum horizon are identical
    with and without maintenance (the janitor-on/off equivalence oracle)."""
    vacuumed = _build_db("vacuumed")
    pristine = _build_db("pristine")
    writesets = _writesets(operations)
    highest_horizon = 0
    for index, ws in enumerate(writesets, start=1):
        vacuumed.apply_writeset_batch([(index, ws)])
        pristine.apply_writeset_batch([(index, ws)])
        if index in vacuum_points:
            horizon = max(0, index - horizon_lag)
            vacuumed.vacuum(replication_horizon=horizon)
            # The effective horizon is clamped to the local oldest active
            # snapshot, which with no open transactions is current_version.
            highest_horizon = max(highest_horizon, min(horizon, index))
    current = vacuumed.current_version
    assert current == pristine.current_version
    for snapshot in range(highest_horizon, current + 1):
        assert (
            vacuumed.table("kv").snapshot_state(snapshot)
            == pristine.table("kv").snapshot_state(snapshot)
        ), f"divergence at snapshot {snapshot} (horizon {highest_horizon})"


@given(operations=ops)
@settings(max_examples=40, deadline=None)
def test_maintained_chains_stay_bounded_under_sustained_apply(operations):
    """Vacuuming at the full horizon after every commit keeps every chain at
    exactly its live suffix: length 1, regardless of history length."""
    db = _build_db("bounded")
    for index, ws in enumerate(_writesets(operations), start=1):
        db.apply_writeset_batch([(index, ws)])
        db.vacuum(replication_horizon=index)
    stats = db.mvcc_stats()
    assert stats.max_chain_length <= 1
    assert db.dead_candidate_count() == 0


@given(operations=ops)
@settings(max_examples=40, deadline=None)
def test_candidate_index_covers_every_reclaimable_row(operations):
    """The dead-candidate index is complete: every row with reclaimable
    potential is indexed, so a budgeted vacuum never strands garbage."""
    db = _build_db("candidates")
    for index, ws in enumerate(_writesets(operations), start=1):
        db.apply_writeset_batch([(index, ws)])
    table = db.table("kv")
    reclaimable = {
        key for key, row in table._rows.items() if row.has_reclaimable_potential
    }
    assert reclaimable <= set(table._dead_candidates)
    # ...and therefore an unbudgeted vacuum leaves nothing behind.
    db.vacuum(replication_horizon=db.current_version)
    assert not any(
        row.has_reclaimable_potential for row in table._rows.values()
    )


@st.composite
def row_scripts(draw):
    """A valid install/delete/vacuum script against one row."""
    script = []
    version = 0
    live = False
    for _ in range(draw(st.integers(min_value=1, max_value=25))):
        action = draw(st.sampled_from(["install", "delete", "vacuum"]))
        if action == "install":
            version += draw(st.integers(min_value=1, max_value=3))
            script.append(("install", version, draw(values)))
            live = True
        elif action == "delete" and live:
            version += draw(st.integers(min_value=1, max_value=3))
            script.append(("delete", version))
            live = False
        elif action == "vacuum":
            script.append(("vacuum", draw(st.integers(min_value=0, max_value=version + 2))))
    return script, version


@given(row_scripts())
@settings(max_examples=80, deadline=None)
def test_linked_chain_row_matches_legacy_list_row(script_and_max):
    """The O(1) linked-chain layout and the seed's list layout agree on every
    observable: visibility at every snapshot, history, and vacuum counts."""
    script, max_version = script_and_max
    linked = VersionedRow(key=1)
    legacy = LegacyVersionedRow(key=1)
    for step in script:
        if step[0] == "install":
            _, version, value = step
            linked.install(RowVersion(created_version=version, values={"value": value}))
            legacy.install(RowVersion(created_version=version, values={"value": value}))
        elif step[0] == "delete":
            linked.delete(step[1])
            legacy.delete(step[1])
        else:
            assert linked.vacuum(step[1]) == legacy.vacuum(step[1])
        assert list(linked.history()) == list(legacy.history())
        assert linked.version_count() == legacy.version_count()
    for snapshot in range(max_version + 2):
        left = linked.version_for_snapshot(snapshot)
        right = legacy.version_for_snapshot(snapshot)
        assert (left is None) == (right is None)
        if left is not None:
            assert left == right
    latest_linked, latest_legacy = linked.latest(), legacy.latest()
    assert (latest_linked is None) == (latest_legacy is None)
    if latest_linked is not None:
        assert latest_linked == latest_legacy


@given(st.lists(st.tuples(st.integers(0, 1), keys, values), min_size=1, max_size=20))
@settings(max_examples=25, deadline=None)
def test_system_maintenance_preserves_replica_consistency(operations):
    """End to end: commits through the proxies, refreshes, and janitor runs
    leave every replica identical and every chain vacuumable to its horizon."""
    system = build_tashkent_mw_system(2, certifier_gc_headroom=0)
    system.create_table("kv", ["id", "value"])
    sessions = [system.session(i, client_name=f"prop-{i}") for i in range(2)]
    model: dict[int, int] = {}
    for replica_index, key, value in operations:
        session = sessions[replica_index]
        session.begin()
        if key in model:
            session.update("kv", key, value=value)
        else:
            session.insert("kv", key, id=key, value=value)
        # Certification can abort a commit from a stale replica (the SI
        # first-committer-wins rule); only committed writes enter the model.
        if session.commit().committed:
            model[key] = value
    system.refresh_all()
    system.run_maintenance()
    assert system.replicas_consistent()
    for replica in system.replicas:
        reader = replica.database.begin()
        for key, value in model.items():
            assert replica.database.read(reader, "kv", key)["value"] == value
        replica.database.commit(reader)
