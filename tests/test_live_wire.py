"""Unit tests for `WireClient` crash-surface behavior (`repro/live/wire.py`).

In-process socket servers (plain threads, no subprocesses) let these pin
down the exact accounting and scoping rules the live crash tests build on:

* `resends` counts only retries whose request frame may have reached the
  peer — a dial refusal (connect raised before any bytes went out) must
  not inflate the maybe-duplicate counter `RemoteWalDevice.resent_batches`
  derives from it;
* a pipelined call timeout is scoped to its own `rid` — the connection and
  every other in-flight call survive;
* socket swap-out (close / reader-loop death) is `_send_lock`-protected,
  so concurrent senders and closers never race a half-closed socket.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time

import pytest

from repro.live.wire import CallTimedOut, ConnectionLost, WireClient

_LEN = struct.Struct(">I")


def _recv_exactly(conn, length):
    data = b""
    while len(data) < length:
        chunk = conn.recv(length - len(data))
        if not chunk:
            raise EOFError
        data += chunk
    return data


def _read_request(conn):
    (length,) = _LEN.unpack(_recv_exactly(conn, _LEN.size))
    return json.loads(_recv_exactly(conn, length))


def _send_response(conn, payload):
    body = json.dumps(payload).encode()
    conn.sendall(_LEN.pack(len(body)) + body)


class _MiniServer:
    """A one-thread framed server with a pluggable request handler.

    The handler returns a response dict, or ``None`` to drop the request on
    the floor (simulates a wedged peer for that call).
    """

    def __init__(self, handler):
        self._handler = handler
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        self._listener.settimeout(0.1)
        conns = []
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                conns.append(conn)
                worker = threading.Thread(
                    target=self._serve_conn, args=(conn,), daemon=True)
                worker.start()
        finally:
            for conn in conns:
                try:
                    conn.close()
                except OSError:
                    pass

    def _serve_conn(self, conn):
        try:
            while True:
                request = _read_request(conn)
                response = self._handler(request)
                if response is None:
                    continue  # wedged: never answer this one
                if "rid" in request:
                    response = {**response, "rid": request["rid"]}
                _send_response(conn, response)
        except (OSError, EOFError):
            pass

    def stop(self):
        self._stop.set()
        self._thread.join(timeout=2.0)
        try:
            self._listener.close()
        except OSError:
            pass


def _free_port():
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


# -- resend accounting: dial refusal vs interrupted exchange -----------------


def test_dial_refusal_is_not_a_resend():
    # Nothing listens on the port: every retry is a fresh dial that never
    # wrote a byte.  reconnects tick, resends must not.
    client = WireClient("127.0.0.1", _free_port(), timeout=0.2)
    with pytest.raises(ConnectionLost) as excinfo:
        client.call_retrying("ping", deadline_s=0.8, retry_interval_s=0.05)
    assert excinfo.value.request_sent is False
    assert client.resends == 0
    assert client.reconnects >= 1


def test_kill_then_retry_while_down_splits_resends_from_reconnects():
    # An established connection dies mid-exchange (request possibly
    # delivered: one resend), then stays down across further retries (dial
    # refusals: reconnects only).  This is the split RemoteWalDevice's
    # resent_batches relies on.
    server = _MiniServer(lambda request: {"ok": True})
    client = WireClient("127.0.0.1", server.port, timeout=0.5)
    assert client.call("ping")["ok"]
    server.stop()  # kill the peer; client still holds the dead connection
    with pytest.raises(ConnectionLost):
        client.call_retrying("ping", deadline_s=1.0, retry_interval_s=0.05)
    # Exactly one attempt had its frame on the wire (the first, over the
    # already-established connection); every later attempt was refused at
    # dial time and must not count as a maybe-duplicate.
    assert client.resends == 1
    assert client.reconnects > 1


def test_dial_refusal_mirrors_sequential_and_pipelined():
    port = _free_port()
    for pipelined in (False, True):
        client = WireClient("127.0.0.1", port, timeout=0.2, pipelined=pipelined)
        with pytest.raises(ConnectionLost) as excinfo:
            client.call("ping")
        assert excinfo.value.request_sent is False, f"pipelined={pipelined}"


# -- pipelined timeout: scoped blast radius ----------------------------------


def test_pipelined_timeout_spares_other_in_flight_calls():
    release = threading.Event()

    def handler(request):
        if request["op"] == "slow":
            release.wait(5.0)
        return {"ok": True, "op": request["op"]}

    server = _MiniServer(handler)
    try:
        client = WireClient("127.0.0.1", server.port, timeout=0.3, pipelined=True)
        results = {}

        def call_fast():
            time.sleep(0.05)  # enqueue after "slow" is on the wire
            results["fast"] = client.call("fast")

        fast_thread = threading.Thread(target=call_fast)
        fast_thread.start()
        with pytest.raises(CallTimedOut) as excinfo:
            client.call("slow")
        assert excinfo.value.request_sent is True
        release.set()
        fast_thread.join(timeout=2.0)
        # The timeout did not tear down the shared connection: the
        # concurrent call completed and the next call reuses the socket.
        assert results["fast"]["ok"]
        assert client.connected
        reconnects_before = client.reconnects
        assert client.call("fast2")["op"] == "fast2"
        assert client.reconnects == reconnects_before
    finally:
        server.stop()


def test_pipelined_timeout_late_response_is_dropped():
    def handler(request):
        if request["op"] == "never":
            return None  # wedged for this op
        return {"ok": True, "op": request["op"]}

    server = _MiniServer(handler)
    try:
        client = WireClient("127.0.0.1", server.port, timeout=0.2, pipelined=True)
        with pytest.raises(CallTimedOut):
            client.call("never")
        # The abandoned rid's slot is gone; a normal call on the same
        # connection still routes to the right waiter.
        assert client.call("ok-op")["op"] == "ok-op"
    finally:
        server.stop()


# -- lock-protected socket swap-out ------------------------------------------


def test_concurrent_close_and_calls_do_not_race(tmp_path):
    server = _MiniServer(lambda request: {"ok": True})
    try:
        client = WireClient("127.0.0.1", server.port, timeout=1.0, pipelined=True)
        stop = threading.Event()
        errors = []

        def caller():
            while not stop.is_set():
                try:
                    client.call_retrying("ping", deadline_s=2.0,
                                         retry_interval_s=0.01)
                except ConnectionLost as exc:
                    errors.append(exc)

        threads = [threading.Thread(target=caller) for _ in range(4)]
        for thread in threads:
            thread.start()
        # Hammer close() against live senders; the lock-protected swap must
        # keep this free of crashes, deadlocks and AttributeErrors.
        deadline = time.monotonic() + 1.0
        while time.monotonic() < deadline:
            client.close()
            time.sleep(0.01)
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)
            assert not thread.is_alive(), "caller thread deadlocked"
        assert not errors
    finally:
        server.stop()


# -- failover address rotation ----------------------------------------------


def test_dial_refusal_rotates_to_fallback_address():
    standby = _MiniServer(lambda request: {"ok": True, "who": "standby"})
    try:
        dead_port = _free_port()
        client = WireClient("127.0.0.1", dead_port, timeout=0.5,
                            fallbacks=(("127.0.0.1", standby.port),))
        response = client.call_retrying("ping", deadline_s=5.0,
                                        retry_interval_s=0.02)
        assert response["who"] == "standby"
        assert client.resends == 0  # rotation happened on refused dials only
    finally:
        standby.stop()


def test_not_promoted_answer_is_retried_without_resend_accounting():
    promoted = threading.Event()

    def handler(request):
        if not promoted.is_set():
            return {"ok": False, "error": "standby not promoted",
                    "error_type": "NotPromoted"}
        return {"ok": True, "who": "standby"}

    server = _MiniServer(handler)
    try:
        client = WireClient("127.0.0.1", server.port, timeout=1.0)
        timer = threading.Timer(0.3, promoted.set)
        timer.start()
        response = client.call_retrying("ping", deadline_s=5.0,
                                        retry_interval_s=0.05)
        assert response["who"] == "standby"
        assert client.resends == 0
        timer.cancel()
    finally:
        server.stop()
