"""Functional tests for the replicated live scheduler machinery.

No sockets or subprocesses: `LiveReplicatedCertifierService` runs on
in-memory counting devices and `rebuild_from_shard_wals` is fed the
devices' durable payloads — exactly what a promoted standby reads out of
the shard processes' WAL files, minus the wire.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.certification import CertificationRequest
from repro.engine.log_device import CountingLogDevice
from repro.live.codec import (
    decode_shard_log_entry,
    decode_state_transfer,
    encode_shard_log_entry,
    encode_state_transfer,
)
from repro.live.replicated import (
    LiveReplicatedCertifierService,
    decode_entry_payload,
    encode_entry_payload,
    rebuild_from_shard_wals,
)
from repro.core.writeset import WriteSet, make_writeset
from repro.middleware.certifier import CertifierConfig
from repro.consensus.sharded import ENTRY_GC, ShardLogEntry


def ws(*keys: object, table: str = "t") -> WriteSet:
    return make_writeset([(table, key) for key in keys])


def _config(shards, **overrides):
    return dataclasses.replace(
        CertifierConfig(shards=shards, gc_interval_requests=0), **overrides)


def _service(shards):
    devices = [CountingLogDevice() for _ in range(shards)]
    service = LiveReplicatedCertifierService(_config(shards), log_devices=devices)
    return service, devices


def _request(version, writeset, origin="replica-0"):
    return CertificationRequest(
        tx_start_version=version, writeset=writeset,
        replica_version=version, origin_replica=origin)


def _durable_entries(devices):
    return [[decode_entry_payload(p) for p in device.durable_payloads]
            for device in devices]


def _drive(service, count=6, shards=2):
    committed = []
    for i in range(count):
        version = service.system_version
        tx_id = f"client-{i}:1"
        # Alternate single-shard and cross-shard writesets.
        keys = (i, i + shards) if i % 2 else (i,)
        result = service.certify_tx(_request(version, ws(*keys)), tx_id)
        assert result.committed
        committed.append((tx_id, result.tx_commit_version))
    return committed


def test_wal_payloads_are_full_entries():
    service, devices = _service(2)
    committed = _drive(service)
    entries = [e for per_shard in _durable_entries(devices) for e in per_shard]
    assert entries, "flush wrote no payloads"
    for entry in entries:
        assert entry.kind == "commit"
        assert entry.writeset is not None and len(list(entry.writeset)) > 0
        assert entry.touched
        assert entry.origin_replica == "replica-0"
    # Every committed round's tx_id appears in at least one shard's WAL.
    logged_tx = {e.tx_id for e in entries}
    assert {tx for tx, _ in committed} <= logged_tx


def test_cross_shard_round_is_on_every_touched_wal():
    service, devices = _service(2)
    result = service.certify_tx(_request(0, ws(0, 1)), "xshard:1")
    assert result.committed
    per_shard = _durable_entries(devices)
    for shard_id in (0, 1):
        match = [e for e in per_shard[shard_id]
                 if e.global_version == result.tx_commit_version]
        assert len(match) == 1
        assert match[0].touched == (0, 1)


def test_rebuild_from_wals_matches_primary():
    service, devices = _service(2)
    committed = _drive(service, count=8)
    certifier, report, completions = rebuild_from_shard_wals(
        _durable_entries(devices), config=_config(2))
    assert completions == []
    assert report.rounds_completed == 0
    assert report.system_version == service.system_version
    assert report.durable_version == service.core.durable_version
    # Decisions, versions and horizons are bit-equivalent: the recovered
    # coordinator exports the same rounds the primary would have.
    assert certifier.core.export_rounds() == service.export_rounds() \
        if hasattr(certifier.core, "export_rounds") else True
    rebuilt = LiveReplicatedCertifierService.from_recovered_core(
        certifier.core, config=_config(2),
        log_devices=[CountingLogDevice(), CountingLogDevice()])
    assert rebuilt.export_rounds() == service.export_rounds()
    assert certifier.committed_acks() == {tx: v for tx, v in committed}


def test_rebuild_completes_round_missing_on_one_shard():
    # Simulate the primary dying mid-flush of a cross-shard round: the
    # entry reached shard 0's WAL but not shard 1's.
    service, devices = _service(2)
    _drive(service, count=4)
    result = service.certify_tx(_request(0, ws(10, 11)), "torn:1")
    assert result.committed
    per_shard = _durable_entries(devices)
    # Drop the final (cross-shard) entry from shard 1's WAL.
    assert per_shard[1][-1].global_version == result.tx_commit_version
    per_shard[1] = per_shard[1][:-1]
    certifier, report, completions = rebuild_from_shard_wals(
        per_shard, config=_config(2))
    assert report.rounds_completed == 1
    assert completions == [(1, per_shard[0][-1])] or (
        completions[0][0] == 1
        and completions[0][1].global_version == result.tx_commit_version)
    assert report.system_version == service.system_version
    assert certifier.committed_acks()["torn:1"] == result.tx_commit_version


def test_rebuild_restores_gc_horizon_and_prunes_ack_table():
    config = _config(2, gc_headroom_versions=0)
    devices = [CountingLogDevice() for _ in range(2)]
    service = LiveReplicatedCertifierService(config, log_devices=devices)
    committed = _drive(service, count=6)
    # Both replicas fully applied: GC can prune everything below the
    # low-water mark (headroom forced to 0).
    service.register_replica("replica-0", service.system_version)
    service.register_replica("replica-1", service.system_version)
    pruned = service.collect_garbage()
    assert pruned > 0
    horizon = service.core.pruned_version
    certifier, report, _ = rebuild_from_shard_wals(
        _durable_entries(devices), config=config)
    assert report.pruned_version == horizon
    # Acks at or below the replicated horizon are dropped on rebuild too.
    expected = {tx: v for tx, v in committed if v > horizon}
    assert certifier.committed_acks() == expected


def test_duplicate_certify_after_rebuild_is_replayed_not_readmitted():
    service, devices = _service(2)
    result = service.certify_tx(_request(0, ws(5)), "dup:1")
    certifier, _, _ = rebuild_from_shard_wals(
        _durable_entries(devices), config=_config(2))
    replay = certifier.certify(_request(0, ws(5)), tx_id="dup:1")
    assert replay.committed
    assert replay.tx_commit_version == result.tx_commit_version
    assert certifier.stats.replayed_acks == 1


def test_single_shard_mode_rebuilds_too():
    service, devices = _service(1)
    committed = _drive(service, count=5, shards=1)
    certifier, report, completions = rebuild_from_shard_wals(
        _durable_entries(devices), config=_config(1))
    assert completions == []
    assert report.system_version == service.system_version
    assert certifier.committed_acks() == dict(committed)


# -- codec round trips --------------------------------------------------------


def test_shard_log_entry_codec_round_trip():
    entry = ShardLogEntry(
        kind="commit", global_version=7, writeset=ws(1, "k", 3),
        touched=(0, 2), origin_replica="replica-1",
        certified_back_to=4, tx_id="c:9")
    decoded = decode_shard_log_entry(encode_shard_log_entry(entry))
    assert decoded.kind == entry.kind
    assert decoded.global_version == entry.global_version
    assert decoded.touched == entry.touched
    assert decoded.origin_replica == entry.origin_replica
    assert decoded.certified_back_to == entry.certified_back_to
    assert decoded.tx_id == entry.tx_id
    assert sorted(map(repr, decoded.writeset.item_ids)) == \
        sorted(map(repr, entry.writeset.item_ids))
    gc = ShardLogEntry(kind=ENTRY_GC, global_version=12)
    raw = encode_entry_payload(gc)
    assert decode_entry_payload(raw).kind == ENTRY_GC
    assert decode_entry_payload(raw).writeset is None


def test_state_transfer_codec_round_trip_validates():
    service, _ = _service(2)
    _drive(service, count=6)
    package = service.export_state_transfer()
    decoded = decode_state_transfer(encode_state_transfer(package))
    decoded.validate()  # checksum recomputes identically after the wire
    assert decoded.num_shards == package.num_shards
    assert decoded.horizon == package.horizon
    assert len(decoded.rounds) == len(package.rounds)
    rebuilt = LiveReplicatedCertifierService.from_state_transfer(
        decoded, config=_config(2),
        log_devices=[CountingLogDevice(), CountingLogDevice()])
    assert rebuilt.system_version == service.system_version
    assert rebuilt.export_rounds() == service.export_rounds()


def test_tampered_state_transfer_fails_validation():
    service, _ = _service(2)
    _drive(service, count=4)
    payload = encode_state_transfer(service.export_state_transfer())
    payload["horizon"] = payload["horizon"] + 1
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        decode_state_transfer(payload).validate()
