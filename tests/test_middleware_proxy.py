"""Tests for the transparent proxy in all three system modes."""

import pytest

from repro.core.config import SystemKind
from repro.engine.database import Database
from repro.errors import CertificationAborted, InvalidTransactionState, TransactionAborted
from repro.middleware.certifier import CertifierService
from repro.middleware.proxy import TransparentProxy


def make_proxy(system, certifier=None, name="replica-0"):
    """Build one replica proxy.

    The first proxy on a certifier loads the initial data; later proxies on
    the same certifier receive it through remote writesets (refresh), exactly
    like replicas joining the replicated system.
    """
    db = Database(name)
    db.create_table("accounts", ["id", "balance"])
    certifier = certifier or CertifierService()
    proxy = TransparentProxy(db, certifier, system=system, replica_name=name)
    if certifier.system_version == 0:
        txn = proxy.begin()
        for i in range(5):
            proxy.insert(txn, "accounts", i, id=i, balance=100)
        outcome = proxy.commit(txn)
        assert outcome.committed
    else:
        proxy.refresh()
    return proxy, certifier


@pytest.mark.parametrize("system", [SystemKind.BASE, SystemKind.TASHKENT_MW, SystemKind.TASHKENT_API])
def test_update_transaction_commits_through_certifier(system):
    proxy, certifier = make_proxy(system)
    txn = proxy.begin()
    row = proxy.read(txn, "accounts", 1)
    proxy.update(txn, "accounts", 1, balance=row["balance"] + 1)
    outcome = proxy.commit(txn)
    assert outcome.committed
    assert outcome.commit_version == 2
    assert proxy.replica_version.version == 2
    assert certifier.system_version == 2


@pytest.mark.parametrize("system", [SystemKind.BASE, SystemKind.TASHKENT_MW, SystemKind.TASHKENT_API])
def test_readonly_transaction_never_contacts_certifier(system):
    proxy, certifier = make_proxy(system)
    requests_before = certifier.core.certification_requests
    txn = proxy.begin()
    proxy.read(txn, "accounts", 1)
    outcome = proxy.commit(txn)
    assert outcome.committed and outcome.readonly
    assert certifier.core.certification_requests == requests_before


def test_standalone_mode_has_no_proxy():
    db = Database("solo")
    with pytest.raises(InvalidTransactionState):
        TransparentProxy(db, CertifierService(), system=SystemKind.STANDALONE)


def test_tashkent_mw_disables_synchronous_commit_at_the_database():
    proxy, _ = make_proxy(SystemKind.TASHKENT_MW)
    assert proxy.database.synchronous_commit is False
    base_proxy, _ = make_proxy(SystemKind.BASE, name="replica-1")
    assert base_proxy.database.synchronous_commit is True


def test_remote_writesets_are_applied_before_local_commit():
    certifier = CertifierService()
    proxy_a, _ = make_proxy(SystemKind.TASHKENT_MW, certifier, name="replica-A")
    proxy_b, _ = make_proxy(SystemKind.TASHKENT_MW, certifier, name="replica-B")

    txn_a = proxy_a.begin()
    proxy_a.update(txn_a, "accounts", 1, balance=500)
    assert proxy_a.commit(txn_a).committed

    txn_b = proxy_b.begin()
    proxy_b.update(txn_b, "accounts", 2, balance=700)
    outcome = proxy_b.commit(txn_b)
    assert outcome.committed
    assert outcome.remote_writesets_applied >= 1
    reader = proxy_b.begin()
    assert proxy_b.read(reader, "accounts", 1)["balance"] == 500
    assert proxy_b.replica_version.version == certifier.system_version


def test_certification_conflict_aborts_second_writer_across_replicas():
    certifier = CertifierService()
    proxy_a, _ = make_proxy(SystemKind.BASE, certifier, name="replica-A")
    proxy_b, _ = make_proxy(SystemKind.BASE, certifier, name="replica-B")

    txn_a = proxy_a.begin()
    txn_b = proxy_b.begin()
    proxy_a.update(txn_a, "accounts", 3, balance=1)
    proxy_b.update(txn_b, "accounts", 3, balance=2)
    assert proxy_a.commit(txn_a).committed
    outcome_b = proxy_b.commit(txn_b)
    assert not outcome_b.committed
    assert outcome_b.abort_reason in ("certification", "local-certification")


def test_local_certification_aborts_without_round_trip():
    certifier = CertifierService()
    proxy_a, _ = make_proxy(SystemKind.BASE, certifier, name="replica-A")
    proxy_b, _ = make_proxy(SystemKind.BASE, certifier, name="replica-B")

    # Replica A commits an update to account 4; replica B then refreshes so
    # its proxy_log contains that remote writeset.
    txn_a = proxy_a.begin()
    proxy_a.update(txn_a, "accounts", 4, balance=9)
    proxy_a.commit(txn_a)
    # B starts a conflicting transaction *before* refreshing, so its start
    # version predates the remote writeset.
    txn_b = proxy_b.begin()
    proxy_b.refresh()
    requests_before = certifier.core.certification_requests
    with pytest.raises(CertificationAborted):
        # Eager pre-certification catches the conflict at write time.
        proxy_b.update(txn_b, "accounts", 4, balance=1)
    assert certifier.core.certification_requests == requests_before
    assert proxy_b.stats.eager_precert_aborts == 1


def test_eager_precertification_can_be_disabled():
    certifier = CertifierService()
    proxy_a, _ = make_proxy(SystemKind.BASE, certifier, name="replica-A")
    db_b = Database("replica-B")
    db_b.create_table("accounts", ["id", "balance"])
    proxy_b = TransparentProxy(db_b, certifier, system=SystemKind.BASE,
                               replica_name="replica-B", eager_pre_certification=False)
    proxy_b.refresh()  # pick up A's initial data

    txn_a = proxy_a.begin()
    proxy_a.update(txn_a, "accounts", 4, balance=9)
    proxy_a.commit(txn_a)

    txn_b = proxy_b.begin()
    proxy_b.refresh()
    # With the proxy's eager pre-certification off, the conflict is still
    # caught — but by the database's own first-updater-wins check (or, had
    # the row not been applied locally yet, by certification) rather than by
    # the proxy.
    with pytest.raises(TransactionAborted):
        proxy_b.update(txn_b, "accounts", 4, balance=1)
    assert proxy_b.stats.eager_precert_aborts == 0


def test_bounded_staleness_refresh_pulls_missed_writesets():
    certifier = CertifierService()
    proxy_a, _ = make_proxy(SystemKind.TASHKENT_MW, certifier, name="replica-A")
    proxy_b, _ = make_proxy(SystemKind.TASHKENT_MW, certifier, name="replica-B")
    for i in range(3):
        txn = proxy_a.begin()
        proxy_a.update(txn, "accounts", i, balance=i)
        proxy_a.commit(txn)
    applied = proxy_b.refresh()
    assert applied == 3
    assert proxy_b.replica_version.version == certifier.system_version
    # One refresh when the replica joined plus this explicit one.
    assert proxy_b.stats.staleness_refreshes == 2


def test_api_mode_groups_commit_records_per_flush():
    certifier = CertifierService()
    proxy_a, _ = make_proxy(SystemKind.TASHKENT_API, certifier, name="replica-A")
    proxy_b, _ = make_proxy(SystemKind.TASHKENT_API, certifier, name="replica-B")
    # A commits several updates; B then commits one of its own, dragging in
    # all of A's writesets as remote writesets.
    for i in range(4):
        txn = proxy_a.begin()
        proxy_a.update(txn, "accounts", i, balance=i)
        assert proxy_a.commit(txn).committed
    fsyncs_before = proxy_b.database.fsync_count
    txn_b = proxy_b.begin()
    proxy_b.update(txn_b, "accounts", 4, balance=40)
    outcome = proxy_b.commit(txn_b)
    assert outcome.committed
    assert outcome.remote_writesets_applied == 4
    # All four remote writesets plus the local commit shared one flush
    # because AllUpdates-style writesets never artificially conflict.
    assert proxy_b.database.fsync_count - fsyncs_before == 1
    # The grouped flush carried all five commit records at once.
    assert proxy_b.database.wal.stats.records_appended >= 5
    assert proxy_b.database.wal.records_per_sync >= 2.5


def test_api_mode_serialises_artificially_conflicting_remote_writesets():
    certifier = CertifierService()
    proxy_a, _ = make_proxy(SystemKind.TASHKENT_API, certifier, name="replica-A")
    proxy_b, _ = make_proxy(SystemKind.TASHKENT_API, certifier, name="replica-B")
    # Two sequential (non-concurrent) transactions at A touch the same row:
    # at B they arrive as remote writesets that artificially conflict.
    for balance in (111, 222):
        txn = proxy_a.begin()
        proxy_a.update(txn, "accounts", 0, balance=balance)
        assert proxy_a.commit(txn).committed
    fsyncs_before = proxy_b.database.fsync_count
    txn_b = proxy_b.begin()
    proxy_b.update(txn_b, "accounts", 4, balance=4)
    outcome = proxy_b.commit(txn_b)
    assert outcome.committed
    assert proxy_b.stats.artificial_conflicts >= 1
    # The conflicting remote writesets need separate flushes.
    assert proxy_b.database.fsync_count - fsyncs_before >= 2
    reader = proxy_b.begin()
    assert proxy_b.read(reader, "accounts", 0)["balance"] == 222


def test_commit_on_aborted_transaction_raises():
    proxy, _ = make_proxy(SystemKind.BASE)
    txn = proxy.begin()
    proxy.update(txn, "accounts", 1, balance=1)
    proxy.abort(txn)
    with pytest.raises(TransactionAborted):
        proxy.commit(txn)
