"""Smoke tests running the runnable examples to completion.

The examples double as end-to-end documentation of the public API; running
them under pytest means API drift (a renamed builder, a changed stats key, a
broken refresh path) is caught by the tier-1 suite instead of by a reader.
Only the fast, deterministic examples run here — the long sweeps
(``scalability_study.py``) stay manual.
"""

from __future__ import annotations

import os
import subprocess
import sys
from functools import lru_cache
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@lru_cache(maxsize=None)  # each example runs once; every test asserts on it
def run_example(script: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / script)],
        capture_output=True,
        text=True,
        timeout=180,
        env=env,
        cwd=REPO_ROOT,
    )


@pytest.mark.parametrize("script", ["quickstart.py", "bank_tpcb.py",
                                    "routed_cluster.py"])
def test_example_runs_to_completion(script):
    result = run_example(script)
    assert result.returncode == 0, (
        f"{script} failed with rc={result.returncode}\n"
        f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


def test_quickstart_reports_consistency_and_fsync_story():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    # The core claim in miniature: both systems converge...
    assert "replicas consistent: True" in result.stdout
    # ...and the Tashkent-MW replicas never issued a synchronous write.
    assert "[tashkent-mw] synchronous writes — replicas: 0" in result.stdout


def test_bank_tpcb_all_designs_converge():
    result = run_example("bank_tpcb.py")
    assert result.returncode == 0, result.stderr
    assert result.stdout.count("True") >= 3  # consistent column for 3 designs


def test_routed_cluster_shows_the_affinity_story():
    result = run_example("routed_cluster.py")
    assert result.returncode == 0, result.stderr
    # Round-robin bounces into staleness self-conflicts...
    assert "aborted (certification)" in result.stdout
    # ...conflict-aware affinity routing commits every rewrite...
    assert "[conflict-aware] commits=6 aborts=0" in result.stdout
    # ...and admission control sheds the over-limit client.
    assert "admission refused" in result.stdout
