"""Tests for the three workload generators (simulation and functional forms)."""

import pytest

from repro.core.config import WorkloadName, WRITESET_SIZE_BYTES
from repro.middleware.systems import build_tashkent_mw_system
from repro.sim.rng import RandomStreams
from repro.workloads import AllUpdatesWorkload, TPCBWorkload, TPCWWorkload
from repro.workloads.spec import workload_by_name


@pytest.mark.parametrize("name,cls", [
    (WorkloadName.ALL_UPDATES, AllUpdatesWorkload),
    (WorkloadName.TPC_B, TPCBWorkload),
    (WorkloadName.TPC_W, TPCWWorkload),
])
def test_workload_by_name_builds_the_right_class(name, cls):
    workload = workload_by_name(name, num_replicas=3)
    assert isinstance(workload, cls)
    assert workload.num_replicas == 3
    assert workload.describe()["name"] == name.value


def test_allupdates_transactions_never_conflict():
    workload = AllUpdatesWorkload(num_replicas=2)
    rng = RandomStreams(1)
    profiles = [
        workload.next_transaction(rng, replica_index=r, client_index=c, sequence=s)
        for r in range(2) for c in range(3) for s in range(4)
    ]
    assert all(not p.readonly for p in profiles)
    for i, a in enumerate(profiles):
        for b in profiles[i + 1:]:
            assert not a.writeset.conflicts_with(b.writeset)


def test_allupdates_writeset_size_close_to_paper():
    workload = AllUpdatesWorkload()
    profile = workload.next_transaction(RandomStreams(1), replica_index=0, client_index=0, sequence=0)
    paper = WRITESET_SIZE_BYTES[WorkloadName.ALL_UPDATES]
    assert 0.5 * paper <= profile.writeset.size_bytes() <= 2.0 * paper


def test_tpcb_transactions_touch_account_teller_branch_history():
    workload = TPCBWorkload(num_replicas=1)
    profile = workload.next_transaction(RandomStreams(2), replica_index=0, client_index=0, sequence=0)
    assert profile.writeset.tables() == {"accounts", "tellers", "branches", "history"}
    assert not profile.readonly
    paper = WRITESET_SIZE_BYTES[WorkloadName.TPC_B]
    assert 0.5 * paper <= profile.writeset.size_bytes() <= 2.5 * paper


def test_tpcb_hot_branches_produce_some_conflicts():
    workload = TPCBWorkload(num_replicas=1)
    rng = RandomStreams(3)
    profiles = [
        workload.next_transaction(rng, replica_index=0, client_index=0, sequence=s)
        for s in range(300)
    ]
    conflicts = sum(
        1 for a, b in zip(profiles, profiles[1:]) if a.writeset.conflicts_with(b.writeset)
    )
    assert conflicts > 0  # hot rows exist...
    assert conflicts < len(profiles) / 2  # ...but most pairs do not collide


def test_tpcw_shopping_mix_update_fraction():
    workload = TPCWWorkload(num_replicas=1)
    rng = RandomStreams(4)
    profiles = [
        workload.next_transaction(rng, replica_index=0, client_index=0, sequence=s)
        for s in range(1000)
    ]
    update_fraction = sum(1 for p in profiles if not p.readonly) / len(profiles)
    assert 0.15 < update_fraction < 0.25  # the 20% shopping mix
    update_profile = next(p for p in profiles if not p.readonly)
    assert update_profile.exec_cpu_ms > 0
    assert update_profile.writeset.size_bytes() > 100


@pytest.mark.parametrize("workload_cls", [AllUpdatesWorkload, TPCBWorkload, TPCWWorkload])
def test_functional_form_runs_against_the_real_replicated_system(workload_cls):
    workload = workload_cls(num_replicas=2)
    system = build_tashkent_mw_system(num_replicas=2)
    system.create_tables_from_schemas(workload.schemas())
    system.load_initial_data(workload.setup)
    rng = RandomStreams(7)
    committed = 0
    for i in range(12):
        session = system.session(i % 2, client_name=f"c{i % 2}")
        if workload.run_transaction(session, rng, client_index=i % 4, sequence=i):
            committed += 1
    assert committed >= 8  # a few aborts are fine (conflicts), most must commit
    assert system.replicas_consistent()
