"""Unit tests for writesets and their intersection semantics."""

import pytest

from repro.core.writeset import WriteItem, WriteOp, WriteSet, make_writeset


def test_empty_writeset_is_readonly_marker():
    writeset = WriteSet()
    assert writeset.is_empty()
    assert not writeset
    assert len(writeset) == 0
    assert writeset.size_bytes() == 0


def test_add_update_insert_delete_are_recorded_in_order():
    writeset = WriteSet()
    writeset.add_insert("accounts", 1, balance=100)
    writeset.add_update("accounts", 2, balance=50)
    writeset.add_delete("accounts", 3)
    ops = [item.op for item in writeset]
    assert ops == [WriteOp.INSERT, WriteOp.UPDATE, WriteOp.DELETE]
    assert len(writeset) == 3
    assert not writeset.is_empty()


def test_conflict_detection_requires_shared_item():
    a = make_writeset([("accounts", 1), ("accounts", 2)])
    b = make_writeset([("accounts", 3)])
    c = make_writeset([("accounts", 2), ("tellers", 9)])
    assert not a.conflicts_with(b)
    assert a.conflicts_with(c)
    assert c.conflicts_with(a)  # symmetric
    assert a.conflicting_items(c) == frozenset({("accounts", 2)})


def test_same_key_different_table_does_not_conflict():
    a = make_writeset([("accounts", 1)])
    b = make_writeset([("tellers", 1)])
    assert not a.conflicts_with(b)


def test_union_groups_remote_writesets():
    a = make_writeset([("t", 1)])
    b = make_writeset([("t", 2)])
    c = make_writeset([("t", 3)])
    grouped = WriteSet.union([a, b, c])
    assert len(grouped) == 3
    assert grouped.item_ids == frozenset({("t", 1), ("t", 2), ("t", 3)})


def test_touches_and_tables():
    writeset = WriteSet()
    writeset.add_update("branches", 7, balance=1)
    writeset.add_insert("history", "h-1", delta=1)
    assert writeset.touches("branches", 7)
    assert not writeset.touches("branches", 8)
    assert writeset.tables() == frozenset({"branches", "history"})


def test_size_bytes_grows_with_values():
    small = WriteSet()
    small.add_update("t", 1, v=1)
    large = WriteSet()
    large.add_update("t", 1, v="x" * 500)
    assert large.size_bytes() > small.size_bytes() > 0


def test_write_item_identity_and_size():
    item = WriteItem(table="accounts", key=42, op=WriteOp.UPDATE, values={"balance": 7})
    assert item.item_id == ("accounts", 42)
    assert item.size_bytes() > 0


def test_writeset_equality_and_repr():
    a = make_writeset([("t", 1), ("t", 2)])
    b = make_writeset([("t", 1), ("t", 2)])
    c = make_writeset([("t", 2), ("t", 1)])
    assert a == b
    assert a != c  # order matters for replay
    assert "WriteSet" in repr(a)


def test_merge_preserves_order_and_identity():
    a = make_writeset([("t", 1)])
    b = make_writeset([("t", 2), ("t", 1)])
    a.merge(b)
    assert [item.key for item in a] == [1, 2, 1]
    assert a.item_ids == frozenset({("t", 1), ("t", 2)})


def test_write_item_is_hashable_despite_dict_values():
    # Regression: the generated dataclass hash included the ``values`` dict
    # and raised TypeError on any item with column values.
    item = WriteItem(table="accounts", key=1, op=WriteOp.UPDATE, values={"balance": 7})
    other = WriteItem(table="accounts", key=1, op=WriteOp.UPDATE, values={"balance": 9})
    assert hash(item) == hash(other)  # hash ignores values
    assert item != other  # equality still sees them
    assert len({item, WriteItem(table="accounts", key=2)}) == 2


def test_item_ids_are_interned_across_writesets():
    a = WriteItem(table="accounts", key=42)
    b = WriteItem(table="accounts", key=42, op=WriteOp.DELETE)
    assert a.item_id is b.item_id  # shared tuple, not just equal


def test_intern_cache_resets_at_cap_and_keeps_interning():
    from repro.core import writeset as ws_mod

    original_max = ws_mod._ITEM_ID_CACHE_MAX
    ws_mod.clear_intern_cache()
    ws_mod._ITEM_ID_CACHE_MAX = 8
    try:
        for k in range(20):  # flood well past the cap
            ws_mod.intern_item_id("flood", k)
        assert ws_mod.intern_cache_size() <= 8  # bounded, not frozen
        # Hot identities created after the flood still intern (epoch reset).
        a = ws_mod.intern_item_id("hot", "row")
        b = ws_mod.intern_item_id("hot", "row")
        assert a is b
    finally:
        ws_mod._ITEM_ID_CACHE_MAX = original_max
        ws_mod.clear_intern_cache()


def test_unhashable_key_still_builds_an_item_id():
    item = WriteItem(table="t", key=["not", "hashable"])
    assert item.item_id == ("t", ["not", "hashable"])


def test_size_bytes_cache_invalidated_on_add():
    writeset = WriteSet()
    assert writeset.size_bytes() == 0
    writeset.add_update("t", 1, v="x" * 100)
    first = writeset.size_bytes()
    assert first > 100
    assert writeset.size_bytes() == first  # cached, same answer
    writeset.add_update("t", 2, v="y" * 100)
    assert writeset.size_bytes() > first  # cache invalidated by add


def test_iter_item_ids_matches_item_ids():
    writeset = make_writeset([("t", 1), ("t", 2), ("t", 1)])
    assert set(writeset.iter_item_ids()) == set(writeset.item_ids)
    assert writeset.distinct_item_count() == 2
