"""Property-based tests for the storage engine and replica convergence."""

from hypothesis import given, settings, strategies as st

from repro.engine.database import Database
from repro.errors import TransactionAborted
from repro.middleware.systems import build_base_system, build_tashkent_api_system, build_tashkent_mw_system

keys = st.integers(min_value=0, max_value=7)
values = st.integers(min_value=-1000, max_value=1000)


@given(st.lists(st.tuples(keys, values), min_size=0, max_size=40))
@settings(max_examples=50, deadline=None)
def test_engine_sequential_transactions_match_a_dict_model(operations):
    """One-at-a-time transactions behave exactly like a plain dictionary."""
    db = Database("model-check")
    db.create_table("kv", ["id", "value"])
    model: dict[int, int] = {}
    for key, value in operations:
        txn = db.begin()
        if key in model:
            db.update(txn, "kv", key, value=value)
        else:
            db.insert(txn, "kv", key, id=key, value=value)
        db.commit(txn)
        model[key] = value
    reader = db.begin()
    for key, value in model.items():
        assert db.read(reader, "kv", key)["value"] == value
    assert len(db.scan(reader, "kv")) == len(model)


@given(st.lists(st.tuples(keys, values), min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_engine_snapshot_reads_are_stable_despite_later_commits(operations):
    """A long-running reader sees the snapshot it started with, regardless of
    what commits afterwards (the SI guarantee read-only transactions rely on)."""
    db = Database("snapshot-check")
    db.create_table("kv", ["id", "value"])
    setup = db.begin()
    for key in range(8):
        db.insert(setup, "kv", key, id=key, value=0)
    db.commit(setup)

    reader = db.begin()
    before = {key: db.read(reader, "kv", key)["value"] for key in range(8)}
    for key, value in operations:
        txn = db.begin()
        db.update(txn, "kv", key, value=value)
        db.commit(txn)
    after = {key: db.read(reader, "kv", key)["value"] for key in range(8)}
    assert before == after == {key: 0 for key in range(8)}


@st.composite
def replicated_workload(draw):
    ops = draw(st.lists(st.tuples(st.integers(0, 2), keys, values), min_size=1, max_size=25))
    builder = draw(st.sampled_from([build_base_system, build_tashkent_mw_system,
                                    build_tashkent_api_system]))
    return builder, ops


@given(replicated_workload())
@settings(max_examples=25, deadline=None)
def test_replicas_always_converge_whatever_the_interleaving(case):
    """After any sequence of single-row updates issued through arbitrary
    replicas, all replicas converge to identical contents (GSI safety)."""
    builder, operations = case
    system = builder(num_replicas=3)
    system.create_table("kv", ["id", "value"])

    def loader(session):
        session.begin()
        for key in range(8):
            session.insert("kv", key, id=key, value=0)
        session.commit()

    system.load_initial_data(loader)
    for replica_index, key, value in operations:
        session = system.session(replica_index, client_name=f"c{replica_index}")
        try:
            session.begin()
            session.update("kv", key, value=value)
            session.commit()
        except TransactionAborted:
            continue
    assert system.replicas_consistent()
    # The certifier's log length equals the number of globally committed updates,
    # and every replica is at most that version.
    for replica in system.replicas:
        assert replica.replica_version <= system.certifier.system_version
