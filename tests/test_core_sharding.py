"""Unit tests for the sharded certification core (repro.core.sharding)."""

import pytest

from repro.core.certification import CertificationRequest
from repro.core.sharding import (
    GlobalRecord,
    HashPartitioner,
    ShardedCertifier,
)
from repro.core.writeset import WriteSet, make_writeset
from repro.errors import ConfigurationError, LogPrunedError


def request(entries, start=None, replica_version=None, origin="r0", *, certifier=None):
    current = certifier.system_version.version if certifier is not None else 0
    return CertificationRequest(
        tx_start_version=current if start is None else start,
        writeset=make_writeset(entries),
        replica_version=current if replica_version is None else replica_version,
        origin_replica=origin,
    )


# ---------------------------------------------------------------------------- partitioner


def test_hash_partitioner_is_stable_and_total():
    partitioner = HashPartitioner(4)
    items = [("accounts", i) for i in range(200)] + [("tellers", f"k{i}") for i in range(50)]
    first = [partitioner.shard_of(item) for item in items]
    second = [partitioner.shard_of(item) for item in items]
    assert first == second
    assert set(first) == {0, 1, 2, 3}  # every shard gets traffic
    # A fresh partitioner (fresh cache) maps identically: the map must be
    # stable across certifier restarts.
    assert [HashPartitioner(4).shard_of(item) for item in items] == first


def test_partitioner_single_shard_is_identity():
    partitioner = HashPartitioner(1)
    assert partitioner.shard_of(("t", 123)) == 0
    ws = make_writeset([("t", 1), ("u", 2)])
    assert partitioner.split(ws) == {0: ws}


def test_split_preserves_items_and_order():
    partitioner = HashPartitioner(3)
    ws = make_writeset([("t", k) for k in range(20)])
    fragments = partitioner.split(ws)
    assert sum(len(frag) for frag in fragments.values()) == len(ws)
    for shard_id, frag in fragments.items():
        for item in frag:
            assert partitioner.shard_of(item.item_id) == shard_id
        versions = [item.key for item in frag]
        assert versions == sorted(versions)  # original order preserved


def test_split_single_shard_writeset_is_not_copied():
    partitioner = HashPartitioner(4)
    key = next(k for k in range(100) if partitioner.shard_of(("t", k)) == 2)
    ws = make_writeset([("t", key), ("t", key)])
    assert partitioner.split(ws) == {2: ws}
    assert partitioner.split(WriteSet()) == {}


def test_partitioner_validates_shard_count():
    with pytest.raises(ConfigurationError):
        HashPartitioner(0)
    with pytest.raises(ConfigurationError):
        ShardedCertifier(3, partitioner=HashPartitioner(2))


# ---------------------------------------------------------------------------- certification


def test_single_shard_transaction_touches_one_shard_only():
    certifier = ShardedCertifier(4)
    partitioner = certifier.partitioner
    key = next(k for k in range(100) if partitioner.shard_of(("t", k)) == 1)
    result = certifier.certify(request([("t", key)], certifier=certifier))
    assert result.committed and result.tx_commit_version == 1
    record = certifier.record_at(1)
    assert record.shard_locals == ((1, 1),)
    assert record.home_shard == 1
    for shard in certifier.shards:
        expected = 1 if shard.shard_id == 1 else 0
        assert shard.log.last_version == expected


def test_cross_shard_commit_installs_every_fragment():
    certifier = ShardedCertifier(2)
    partitioner = certifier.partitioner
    k0 = next(k for k in range(100) if partitioner.shard_of(("t", k)) == 0)
    k1 = next(k for k in range(100) if partitioner.shard_of(("t", k)) == 1)
    result = certifier.certify(request([("t", k0), ("t", k1)], certifier=certifier))
    assert result.committed
    record = certifier.record_at(result.tx_commit_version)
    assert [shard_id for shard_id, _ in record.shard_locals] == [0, 1]
    assert certifier.shards[0].log.last_version == 1
    assert certifier.shards[1].log.last_version == 1
    # Each shard logged only its fragment.
    assert certifier.shards[0].log.record_at(1).writeset.touches("t", k0)
    assert not certifier.shards[0].log.record_at(1).writeset.touches("t", k1)


def test_cross_shard_abort_leaves_no_partial_append():
    certifier = ShardedCertifier(2)
    partitioner = certifier.partitioner
    k0 = next(k for k in range(100) if partitioner.shard_of(("t", k)) == 0)
    k1 = next(k for k in range(100) if partitioner.shard_of(("t", k)) == 1)
    assert certifier.certify(request([("t", k1)], certifier=certifier)).committed

    # A cross-shard writeset whose shard-1 fragment conflicts: the clean
    # shard-0 fragment must not be appended anywhere (any-shard-aborts).
    lengths_before = [shard.log.last_version for shard in certifier.shards]
    result = certifier.certify(request([("t", k0), ("t", k1)], start=0,
                                       certifier=certifier))
    assert not result.committed
    assert result.conflicting_version == 1
    assert [s.log.last_version for s in certifier.shards] == lengths_before
    assert certifier.system_version.version == 1  # no version burned


def test_conflicting_version_is_earliest_across_shards():
    certifier = ShardedCertifier(2)
    partitioner = certifier.partitioner
    k0 = next(k for k in range(100) if partitioner.shard_of(("t", k)) == 0)
    k1 = next(k for k in range(100) if partitioner.shard_of(("t", k)) == 1)
    assert certifier.certify(request([("t", k1)], certifier=certifier)).committed  # v1
    assert certifier.certify(request([("t", k0)], certifier=certifier)).committed  # v2
    result = certifier.certify(request([("t", k0), ("t", k1)], start=0,
                                       certifier=certifier))
    assert not result.committed
    assert result.conflicting_version == 1


def test_commit_versions_are_dense_over_commits():
    certifier = ShardedCertifier(3)
    committed = []
    for k in range(30):
        result = certifier.certify(request([("t", k), ("u", k)], certifier=certifier))
        assert result.committed
        committed.append(result.tx_commit_version)
    assert committed == list(range(1, 31))
    assert certifier.last_version == 30


# ---------------------------------------------------------------------------- versions / horizons


def test_local_horizon_and_global_of_roundtrip():
    certifier = ShardedCertifier(2)
    partitioner = certifier.partitioner
    k0 = next(k for k in range(100) if partitioner.shard_of(("t", k)) == 0)
    k1 = next(k for k in range(100) if partitioner.shard_of(("t", k)) == 1)
    # Commit order: shard1, shard0, shard1 -> globals 1, 2, 3.
    for key in (k1, k0, k1):
        assert certifier.certify(request([("t", key)], certifier=certifier)).committed
    shard1 = certifier.shards[1]
    assert shard1._globals == [1, 3]
    assert shard1.local_horizon(0) == 0
    assert shard1.local_horizon(1) == 1
    assert shard1.local_horizon(2) == 1  # global 2 lives on shard 0
    assert shard1.local_horizon(3) == 2
    assert shard1.global_of(1) == 1
    assert shard1.global_of(2) == 3


def test_remote_writesets_are_merged_in_global_order():
    certifier = ShardedCertifier(3)
    for k in range(12):
        assert certifier.certify(request([("t", k)], certifier=certifier)).committed
    remote = certifier.fetch_remote_writesets(3, replica="r1")
    assert [info.commit_version for info in remote] == list(range(4, 13))


def test_extend_remote_horizons_cross_shard():
    certifier = ShardedCertifier(2)
    partitioner = certifier.partitioner
    k0 = next(k for k in range(100) if partitioner.shard_of(("t", k)) == 0)
    k1 = next(k for k in range(100) if partitioner.shard_of(("t", k)) == 1)
    assert certifier.certify(request([("t", k0)], certifier=certifier)).committed  # v1
    # v2 starts at snapshot 1, touches both shards.
    assert certifier.certify(request([("t", k0 + 100), ("t", k1)], start=1,
                                     certifier=certifier)).committed
    infos = certifier.fetch_remote_writesets(1)
    assert infos[0].conflict_free_back_to == 1
    extended = certifier.extend_remote_horizons(infos, 0)
    # No conflicts with v1 (different keys): both fragments extend to 0.
    assert extended[0].conflict_free_back_to == 0

    # A fragment that genuinely conflicts further back does not extend.
    assert certifier.certify(request([("t", k0)], start=2,
                                     certifier=certifier)).committed  # v3
    infos = certifier.fetch_remote_writesets(2)
    blocked = certifier.extend_remote_horizons(infos, 0)
    assert blocked[0].conflict_free_back_to == 2  # v1 wrote ("t", k0)


# ---------------------------------------------------------------------------- durability / GC


def test_durable_frontier_requires_all_touched_shards():
    certifier = ShardedCertifier(2)
    partitioner = certifier.partitioner
    k0 = next(k for k in range(100) if partitioner.shard_of(("t", k)) == 0)
    k1 = next(k for k in range(100) if partitioner.shard_of(("t", k)) == 1)
    assert certifier.certify(request([("t", k0), ("t", k1)], certifier=certifier)).committed
    assert certifier.durable_version == 0
    certifier.shards[0].log.mark_durable(1)
    assert certifier.advance_durable_frontier() == []
    assert not certifier.is_record_durable(1)
    certifier.shards[1].log.mark_durable(1)
    newly = certifier.advance_durable_frontier()
    assert [r.commit_version for r in newly] == [1]
    assert certifier.durable_version == 1


def test_frontier_is_contiguous_across_shards():
    certifier = ShardedCertifier(2)
    partitioner = certifier.partitioner
    k0 = next(k for k in range(100) if partitioner.shard_of(("t", k)) == 0)
    k1 = next(k for k in range(100) if partitioner.shard_of(("t", k)) == 1)
    assert certifier.certify(request([("t", k0)], certifier=certifier)).committed  # v1 shard0
    assert certifier.certify(request([("t", k1)], certifier=certifier)).committed  # v2 shard1
    certifier.shards[1].log.mark_durable(1)  # v2 durable, v1 not
    assert certifier.advance_durable_frontier() == []
    certifier.shards[0].log.mark_durable(1)
    assert [r.commit_version for r in certifier.advance_durable_frontier()] == [1, 2]


def test_gc_prunes_directory_and_shard_logs_and_aborts_conservatively():
    certifier = ShardedCertifier(2)
    for k in range(10):
        assert certifier.certify(request([("t", k)], origin="r0",
                                         certifier=certifier)).committed
    for shard in certifier.shards:
        shard.log.mark_durable(shard.log.last_version)
    certifier.advance_durable_frontier()
    certifier.note_replica_version("r0", 10)
    pruned = certifier.collect_garbage(headroom=2)
    assert pruned == 8
    assert certifier.pruned_version == 8
    assert sum(s.log.retained_count for s in certifier.shards) == 2
    # A below-horizon snapshot from a fresh key conservatively aborts.
    result = certifier.certify(request([("t", 999)], start=3, certifier=certifier))
    assert not result.committed
    assert result.conflicting_version == 8
    assert certifier.snapshot_too_old_aborts == 1
    # An unknown, never-caught-up replica below the horizon is refused.
    with pytest.raises(LogPrunedError):
        certifier.certify(request([("t", 1000)], replica_version=2,
                                  origin="stranger", certifier=certifier))


def test_stats_snapshot_sums_shard_contributions():
    certifier = ShardedCertifier(4)
    for k in range(20):
        assert certifier.certify(request([("t", k)], certifier=certifier)).committed
    snap = certifier.stats_snapshot()
    assert snap.commits == 20
    assert snap.system_version == 20
    assert snap.log_length == 20
    assert snap.log_retained_records == 20  # across all shard logs
    assert snap.intersection_tests == sum(
        shard.certifier.intersection_tests for shard in certifier.shards
    )
    assert snap.as_dict()["commits"] == 20
    assert len(certifier.per_shard_stats()) == 4
    assert isinstance(certifier.record_at(1), GlobalRecord)
