"""Replicated snapshots, log compaction and anti-entropy bootstrap.

Coverage layers:

* **log-level compaction** — ``truncate_to`` / ``install_snapshot`` /
  snapshot-aware ``catch_up`` on :class:`ReplicatedLogNode` /
  :class:`ReplicatedLog`;
* **the rejoin-past-the-GC-horizon story** — a group node crashed before
  compaction (log truncated beneath its known prefix) rejoins via snapshot +
  retained suffix and converges, including through the crash-schedule
  harness against the fault-free shards=1 oracle;
* **transfer fault injection** — checksum mismatch → re-fetch, partial
  snapshot → loud failure, crash mid-install → idempotent retry, and the
  :data:`~faults.COMPACT_CRASH_POINTS` grid (a coordinator crash inside
  compaction, including the partially-truncated ``mid-compact`` state);
* **boundedness** — the per-node Paxos log length and the exactly-once
  commit-ack table stay bounded under a sustained retry-heavy workload with
  GC + compaction enabled;
* **round-trip property** (Hypothesis) — snapshot → truncate → recover
  yields the same versions, decisions, acks and watermarks as full-log
  replay;
* the **timing model** — snapshot + suffix state-transfer seconds calibrated
  against Section 9.6, and the sim's calibrated failover window.
"""

import pytest
from hypothesis import given, settings, strategies as st

from faults import COMPACT_CRASH_POINTS, GC_HEADROOM, run_crash_schedule
from repro.consensus.log import ReplicatedLog, ReplicatedLogNode
from repro.consensus.sharded import ReplicatedShardedCertifier
from repro.core.certification import CertificationRequest
from repro.core.writeset import make_writeset
from repro.errors import (
    ConfigurationError,
    ConsensusError,
    QuorumUnavailableError,
    RecoveryError,
)
from repro.recovery.sharded_recovery import recover_sharded_certifier
from repro.recovery.snapshots import (
    StateTransferPackage,
    bootstrap_group_node,
    capture_shard_snapshot,
    compact_certifier,
    plan_node_bootstrap,
)
from repro.recovery.timings import RecoveryTimingModel


# ------------------------------------------------------------------ helpers

def _request(entries, version, *, origin="client"):
    return CertificationRequest(
        writeset=make_writeset(entries),
        tx_start_version=version,
        replica_version=version,
        origin_replica=origin,
    )


def _drive(certifier, count, *, offset=0, tx_prefix="tx"):
    """Commit ``count`` non-conflicting single-item transactions."""
    results = []
    for i in range(count):
        version = certifier.core.last_version
        result = certifier.certify(
            _request([("t0", offset + i)], version), tx_id=(tx_prefix, offset + i))
        assert result.committed
        results.append(result)
    return results


def _sync_replicas(certifier, *names):
    version = certifier.core.last_version
    # ``certify`` notes the origin replica's watermark, so the "client"
    # replica participates in the low-water mark and must advance too.
    for name in names + ("client",):
        certifier.note_replica_version(name, version)


# ------------------------------------------------- log-level compaction

class _Snap:
    """Minimal snapshot stand-in with the duck-typed ``validate``."""

    def __init__(self, ok=True):
        self.ok = ok

    def validate(self):
        if not self.ok:
            raise RecoveryError("stand-in snapshot is corrupt")


def _log3():
    nodes = [ReplicatedLogNode(node_id=i) for i in range(3)]
    log = ReplicatedLog(nodes)
    for value in "abcde":
        log.append(value)
    return log, nodes


def test_node_truncate_drops_prefix_and_is_idempotent():
    log, nodes = _log3()
    snap = _Snap()
    dropped = nodes[0].truncate_to(3, snap)
    assert dropped == 3
    assert nodes[0].base_slot == 3
    assert nodes[0].entries == ["d", "e"]
    assert nodes[0].snapshot is snap
    # Absolute-slot reads survive the shift.
    assert nodes[0].entry_at(3) == "d"
    assert nodes[0].entry_at(2) is None and not nodes[0].covers(2)
    assert nodes[0].known_length() == 5
    # Idempotent at or below the base.
    assert nodes[0].truncate_to(3, snap) == 0
    assert nodes[0].truncate_to(1, snap) == 0


def test_node_truncate_beyond_known_prefix_is_refused():
    log, nodes = _log3()
    with pytest.raises(ConsensusError):
        nodes[0].truncate_to(9, _Snap())


def test_install_snapshot_validates_and_is_idempotent():
    log, nodes = _log3()
    node = nodes[2]
    with pytest.raises(RecoveryError):
        node.install_snapshot(_Snap(ok=False), 3)
    assert node.base_slot == 0  # nothing installed
    assert node.install_snapshot(_Snap(), 3)
    assert node.base_slot == 3
    assert node.snapshot_installs == 1
    # Re-offering at or below the base is a no-op (crash-retry safety).
    assert not node.install_snapshot(_Snap(), 3)
    assert node.snapshot_installs == 1


def test_group_truncate_catches_up_lagging_node_first():
    log, nodes = _log3()
    # Node 2 lags: its known prefix stops short of the truncation point.
    del nodes[2].entries[3:]
    # Nodes 0 and 1 drop four slots each; node 2's catch-up rides the
    # snapshot (its short prefix is folded in rather than dropped).
    assert log.truncate_to(4, _Snap()) == 4 * 2
    assert all(node.base_slot == 4 for node in nodes)
    assert nodes[2].snapshot_installs == 1
    assert [node.entries for node in nodes] == [["e"], ["e"], ["e"]]
    assert log.base_slot() == 4
    assert log.chosen_prefix() == ["e"]


def test_catch_up_serves_snapshot_plus_suffix_past_truncation():
    log, nodes = _log3()
    nodes[2].crash()
    for value in "fgh":
        log.append(value)
    snap = _Snap()
    log.truncate_to(6, snap)  # up nodes keep only "g", "h"
    nodes[2].recover()
    transferred = log.catch_up(nodes[2])
    assert nodes[2].snapshot_installs == 1
    assert nodes[2].snapshot is snap
    assert nodes[2].base_slot == 6
    assert transferred == 2  # just the suffix; the snapshot covers the rest
    assert nodes[2].known_length() == 8
    # The rejoined node serves slot reads like everyone else.
    assert nodes[2].entry_at(6) == "g" and nodes[2].entry_at(7) == "h"


def test_catch_up_without_truncation_is_unchanged():
    log, nodes = _log3()
    nodes[1].crash()
    for value in "fg":
        log.append(value)
    nodes[1].recover()
    assert log.catch_up(nodes[1]) == 2
    assert nodes[1].snapshot_installs == 0
    assert nodes[1].known_length() == 7


# ------------------------------------------------- certifier-level compaction

def test_compaction_truncates_all_groups_and_bounds_logs():
    certifier = ReplicatedShardedCertifier(2)
    _drive(certifier, 12)
    _sync_replicas(certifier, "r1", "r2")
    assert certifier.collect_garbage() == 12
    report = compact_certifier(certifier)
    assert report.shards_compacted == 2
    assert report.entries_truncated > 0
    assert report.shards_skipped_no_quorum == 0
    for shard_id in range(2):
        assert certifier.groups.compaction_base(shard_id) > 0
        snapshot = certifier.groups.snapshot_at(shard_id)
        snapshot.validate()
        assert snapshot.global_version == 12
    assert certifier.stats.compactions == 1
    # Nothing below the horizon survives on any up node.
    assert max(certifier.groups.node_log_lengths(0)) < 12
    # A second compaction with no new GC is a no-op.
    again = compact_certifier(certifier)
    assert again.shards_compacted == 0
    assert certifier.stats.compactions == 1


def test_compaction_skips_shards_without_quorum():
    certifier = ReplicatedShardedCertifier(2, nodes_per_shard=3)
    _drive(certifier, 8)
    _sync_replicas(certifier, "r1", "r2")
    certifier.collect_garbage()
    certifier.groups.crash_node(1, 0)
    certifier.groups.crash_node(1, 1)
    report = compact_certifier(certifier)
    assert report.shards_skipped_no_quorum == 1
    assert all(snap.shard_id == 0 for snap in report.snapshots)


def test_capture_shard_snapshot_contents_and_checksum():
    certifier = ReplicatedShardedCertifier(2)
    _drive(certifier, 6)
    _sync_replicas(certifier, "r1", "r2")
    certifier.collect_garbage()
    snapshot = capture_shard_snapshot(certifier, 0)
    snapshot.validate()
    assert snapshot.global_version == certifier.core.pruned_version
    assert snapshot.local_version == certifier.core.shards[0].local_horizon(
        snapshot.global_version)
    assert dict(snapshot.replica_versions) == {"client": 6, "r1": 6, "r2": 6}
    assert snapshot.size_bytes() > 0
    with pytest.raises(RecoveryError):
        snapshot.corrupted_copy().validate()


def test_recovery_after_compaction_restores_horizon_acks_and_watermarks():
    certifier = ReplicatedShardedCertifier(2)
    _drive(certifier, 10)
    certifier.note_replica_version("r1", 7)
    certifier.note_replica_version("r2", 9)
    certifier.collect_garbage()
    horizon = certifier.core.pruned_version
    acks_before = certifier.committed_acks()
    compact_certifier(certifier)
    certifier.crash()
    report = recover_sharded_certifier(certifier)
    assert report.snapshot_version == horizon
    assert report.snapshots_validated == 2
    assert certifier.core.pruned_version == horizon
    assert certifier.core.last_version == 10
    # Watermarks came back from the snapshots: GC can resume immediately.
    assert certifier.core.low_water_mark() == 7
    # The exactly-once table equals its pre-crash state (snapshot acks for
    # compacted rounds, suffix tx_ids above the horizon).
    assert certifier.committed_acks() == acks_before
    _drive(certifier, 3, offset=100)


def test_recovery_rejects_corrupt_group_snapshot():
    certifier = ReplicatedShardedCertifier(2)
    _drive(certifier, 8)
    _sync_replicas(certifier, "r1", "r2")
    certifier.collect_garbage()
    compact_certifier(certifier)
    for node in certifier.groups.group(0).nodes:
        if node.snapshot is not None:
            object.__setattr__(node.snapshot, "complete", False)
    certifier.crash()
    with pytest.raises(RecoveryError):
        recover_sharded_certifier(certifier)


# ------------------------------------------------- anti-entropy bootstrap

def _compacted_with_down_node(*, extra=6):
    """A 2-shard certifier whose shard-0 node 2 died before GC + compaction
    truncated the group logs beneath its known prefix."""
    certifier = ReplicatedShardedCertifier(2, nodes_per_shard=3)
    _drive(certifier, 8)
    certifier.groups.crash_node(0, 2)
    _drive(certifier, extra, offset=50)
    _sync_replicas(certifier, "r1", "r2")
    certifier.collect_garbage()
    compact_certifier(certifier)
    assert certifier.groups.compaction_base(0) > \
        certifier.groups.group(0).nodes[2].known_length()
    return certifier


def test_node_crashed_past_gc_horizon_rejoins_via_snapshot_and_suffix():
    certifier = _compacted_with_down_node()
    plan = plan_node_bootstrap(certifier.groups, 0, 2)
    assert plan.needs_snapshot
    assert plan.snapshot_bytes > 0
    report = bootstrap_group_node(certifier.groups, 0, 2)
    assert report.snapshot_installed
    assert report.fetch_attempts == 1
    assert report.verified
    node = certifier.groups.group(0).nodes[2]
    assert node.snapshot_installs == 1
    assert node.base_slot == certifier.groups.compaction_base(0)
    # The rejoined node is a first-class quorum member again: kill the other
    # two and the shard keeps serving through it plus one recovered peer.
    certifier.groups.crash_node(0, 0)
    certifier.groups.ensure_leader(0)
    _drive(certifier, 3, offset=200)


def test_bootstrap_without_snapshot_is_plain_catch_up():
    certifier = ReplicatedShardedCertifier(2, nodes_per_shard=3)
    _drive(certifier, 4)
    certifier.groups.crash_node(0, 2)
    _drive(certifier, 4, offset=50)
    report = bootstrap_group_node(certifier.groups, 0, 2)
    assert not report.plan.needs_snapshot
    assert not report.snapshot_installed
    assert report.fetch_attempts == 0
    assert report.verified


def test_checksum_mismatch_triggers_refetch():
    certifier = _compacted_with_down_node()

    def corrupt_first(attempt, snapshot):
        return snapshot.corrupted_copy() if attempt == 1 else None

    report = bootstrap_group_node(certifier.groups, 0, 2,
                                  fetch_hook=corrupt_first)
    assert report.fetch_attempts == 2
    assert report.snapshot_installed
    assert report.verified


def test_partial_snapshot_fails_loudly_when_refetch_exhausted():
    certifier = _compacted_with_down_node()

    def always_corrupt(_attempt, snapshot):
        return snapshot.corrupted_copy()

    with pytest.raises(RecoveryError):
        bootstrap_group_node(certifier.groups, 0, 2,
                             fetch_hook=always_corrupt, max_fetch_attempts=2)
    # The corrupt copy was never installed; a clean retry succeeds.
    node = certifier.groups.group(0).nodes[2]
    assert node.snapshot_installs == 0
    report = bootstrap_group_node(certifier.groups, 0, 2)
    assert report.verified


def test_crash_mid_install_is_repaired_by_retry():
    certifier = _compacted_with_down_node()

    class Boom(Exception):
        pass

    def crash_mid(point):
        if point == "mid-transfer":
            raise Boom()

    with pytest.raises(Boom):
        bootstrap_group_node(certifier.groups, 0, 2, crash_hook=crash_mid)
    node = certifier.groups.group(0).nodes[2]
    assert node.snapshot_installs == 1  # installed, then crashed pre-suffix
    report = bootstrap_group_node(certifier.groups, 0, 2)
    assert report.verified
    assert not report.snapshot_installed  # idempotent re-offer was a no-op
    assert node.snapshot_installs == 1


def test_bootstrap_refuses_when_no_peer_is_up():
    certifier = _compacted_with_down_node()
    certifier.groups.crash_node(0, 0)
    certifier.groups.crash_node(0, 1)
    with pytest.raises(QuorumUnavailableError):
        bootstrap_group_node(certifier.groups, 0, 2)


# ------------------------------------------------- crash-schedule coverage

#: Certify and compact operations both advance the request index, so
#: ``crash_at_request`` addresses the compactions at indices 5 and 7.
COMPACT_WORKLOAD = [
    ("certify", [(0, 1), (1, 2)], 1.0),
    ("certify", [(0, 3)], 1.0),
    ("certify", [(1, 4)], 1.0),
    ("certify", [(0, 5)], 1.0),
    ("certify", [(1, 6)], 1.0),
    ("poll",),
    ("gc",),
    ("compact",),
    ("certify", [(0, 7)], 1.0),
    ("poll",),
    ("gc",),
    ("compact",),
    ("poll",),
]
COMPACT_REQUEST_COUNT = sum(
    1 for op in COMPACT_WORKLOAD if op[0] in ("certify", "compact"))


@pytest.mark.parametrize("crash_point", COMPACT_CRASH_POINTS)
def test_grid_compaction_crash_points_recover_to_oracle(crash_point):
    fired_somewhere = False
    for crash_at in range(COMPACT_REQUEST_COUNT):
        report = run_crash_schedule(
            COMPACT_WORKLOAD, shards=2,
            crash_point=crash_point, crash_at_request=crash_at)
        fired_somewhere = fired_somewhere or report["crash_fired"]
        if report["crash_fired"]:
            assert report["crashes"] == 1
            assert report["recoveries"] >= 1
    assert fired_somewhere


def test_grid_node_rejoin_past_horizon_matches_oracle():
    # The acceptance-criteria schedule: a group node dies, the workload GCs
    # and compacts past its prefix, the node rejoins via snapshot + suffix —
    # all invisible to clients (the harness asserts oracle equivalence).
    workload = [
        ("certify", [(0, 1), (1, 2)], 1.0),
        ("crash_group_node", 0, 2),
        ("certify", [(0, 3)], 1.0),
        ("certify", [(1, 4)], 1.0),
        ("certify", [(0, 5)], 1.0),
        ("poll",),
        ("gc",),
        ("compact",),
        ("recover_group_node", 0, 2),
        ("certify", [(0, 7), (1, 8)], 1.0),
        ("poll",),
    ]
    report = run_crash_schedule(workload, shards=2, crash_point=None)
    assert report["crashes"] == 0
    assert report["commits"] == 5


def test_fault_free_compact_workload_matches_oracle():
    report = run_crash_schedule(COMPACT_WORKLOAD, shards=2, crash_point=None)
    assert report["crashes"] == 0
    assert report["commits"] == 6


# ------------------------------------------------- boundedness under GC

def test_ack_table_and_node_logs_stay_bounded_under_sustained_workload():
    certifier = ReplicatedShardedCertifier(2, gc_headroom=4)
    max_acks = max_log = 0
    for i in range(240):
        version = certifier.core.last_version
        result = certifier.certify(_request([("t0", i)], version),
                                   tx_id=("tx", i))
        assert result.committed
        # Retry-heavy: every transaction is immediately retried once and
        # must be answered from the ack table, not re-certified.
        retry = certifier.certify(_request([("t0", i)], version),
                                  tx_id=("tx", i))
        assert retry.tx_commit_version == result.tx_commit_version
        if i % 5 == 4:
            _sync_replicas(certifier, "r1", "r2")
            certifier.collect_garbage()
        if i % 20 == 19:
            compact_certifier(certifier)
        max_acks = max(max_acks, certifier.committed_tx_count)
        max_log = max(max_log, *certifier.groups.node_log_lengths(0),
                      *certifier.groups.node_log_lengths(1))
    assert certifier.core.last_version == 240
    assert certifier.stats.replayed_acks == 240
    assert certifier.stats.ack_entries_dropped > 200
    assert certifier.stats.compactions == 12
    # Horizon-bound: far below the 240 committed transactions.
    assert max_acks <= 30
    assert max_log <= 60


def test_gc_headroom_knob_defaults_and_validation():
    certifier = ReplicatedShardedCertifier(2, gc_headroom=6)
    _drive(certifier, 10)
    _sync_replicas(certifier, "r1", "r2")
    # collect_garbage() with no argument honours the configured headroom.
    assert certifier.collect_garbage() == 4
    assert certifier.core.pruned_version == 4
    # An explicit headroom still overrides per call.
    assert certifier.collect_garbage(headroom=2) == 4
    assert certifier.core.pruned_version == 8
    with pytest.raises(ConfigurationError):
        ReplicatedShardedCertifier(2, gc_headroom=-1)
    from repro.core.config import ReplicationConfig
    with pytest.raises(ConfigurationError):
        ReplicationConfig(certifier_gc_headroom=-1)
    assert ReplicationConfig(certifier_gc_headroom=0).certifier_gc_headroom == 0


def test_sim_config_threads_gc_headroom_to_node():
    from repro.cluster.nodes import SimCertifierNode, SimShardedCertifierNode
    from repro.core.config import ReplicationConfig
    from repro.sim.kernel import Environment
    from repro.sim.rng import RandomStreams

    config = ReplicationConfig(certifier_shards=2, certifier_gc_headroom=7)
    node = SimShardedCertifierNode(Environment(), config, RandomStreams(1),
                                   durability_enabled=True)
    assert node.gc_headroom_versions == 7
    assert SimShardedCertifierNode.gc_headroom_versions == 512  # class default intact
    single = SimCertifierNode(Environment(), ReplicationConfig(
        certifier_gc_headroom=9), RandomStreams(1), durability_enabled=True)
    assert single.gc_headroom_versions == 9
    assert SimCertifierNode.gc_headroom_versions == 512


def test_calibrated_failover_window_tracks_retained_suffix():
    from repro.cluster.nodes import SimShardedCertifierNode
    from repro.core.config import ReplicationConfig
    from repro.sim.kernel import Environment
    from repro.sim.rng import RandomStreams

    node = SimShardedCertifierNode(Environment(), ReplicationConfig(
        certifier_shards=2), RandomStreams(1), durability_enabled=True)
    assert node.calibrated_failover_window_ms(0) == 0.0
    model = RecoveryTimingModel()
    shard = node.core.shards[0]
    for version in range(1, 41):
        shard.admit_at(make_writeset([("t0", version)]), version - 1, version, "r")
    expected = model.certifier_bootstrap_seconds(0, 40) * 1000.0
    assert node.calibrated_failover_window_ms(0) == pytest.approx(expected)
    assert expected > 0


# ------------------------------------------------- round-trip property

_roundtrip_ops = st.lists(
    st.one_of(
        st.tuples(st.just("certify"),
                  st.lists(st.tuples(st.integers(0, 1), st.integers(0, 9)),
                           min_size=1, max_size=3),
                  st.floats(0.0, 1.0)),
        st.just(("poll",)),
        st.just(("gc",)),
        st.just(("compact",)),
    ),
    min_size=1, max_size=20)


@given(operations=_roundtrip_ops, shards=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_property_compacted_runs_equal_shards1_oracle(operations, shards):
    """Snapshot → truncate → crash → recover ≡ full-log replay: any workload
    interleaved with compactions stays equivalent to the fault-free shards=1
    oracle (decisions, versions, streams, GC horizon — asserted inline by
    the harness), including through a post-flush coordinator crash."""
    run_crash_schedule(operations, shards=shards, crash_point=None)
    run_crash_schedule(operations, shards=shards,
                       crash_point="post-flush", crash_at_request=0)


@given(count=st.integers(2, 12), low_water=st.integers(0, 12),
       headroom=st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_property_bootstrap_equals_full_replay(count, low_water, headroom):
    """A fresh node joining a compacted group ends byte-identical (entries,
    base, snapshot horizon) to a node that lived through the full history."""
    compacted = ReplicatedShardedCertifier(2, nodes_per_shard=3,
                                           gc_headroom=headroom)
    replayed = ReplicatedShardedCertifier(2, nodes_per_shard=3,
                                          gc_headroom=headroom)
    low_water = min(low_water, count)
    for certifier in (compacted, replayed):
        _drive(certifier, count)
        certifier.note_replica_version("r1", low_water)
        certifier.note_replica_version("r2", low_water)
        certifier.collect_garbage()
    compact_certifier(compacted)
    # Both coordinators crash and recover from what their groups retain.
    for certifier in (compacted, replayed):
        certifier.crash()
        recover_sharded_certifier(certifier)
    assert compacted.core.last_version == replayed.core.last_version
    assert compacted.core.pruned_version == replayed.core.pruned_version
    assert compacted.committed_acks() == replayed.committed_acks()
    # Snapshots carry replica watermarks across the crash; full-log replay
    # must wait for replicas to reconnect.  Once both have heard from the
    # replicas again, GC behaves identically.
    for certifier in (compacted, replayed):
        certifier.note_replica_version("r1", low_water)
        certifier.note_replica_version("r2", low_water)
        certifier.note_replica_version("client", low_water)
        certifier.collect_garbage()
    assert compacted.core.low_water_mark() == replayed.core.low_water_mark()
    assert compacted.core.pruned_version == replayed.core.pruned_version
    for shard_id in range(2):
        assert (compacted.core.shards[shard_id].global_map()
                == replayed.core.shards[shard_id].global_map())
    # And both answer identical refresh streams (from the shared horizon —
    # anything below it is pruned on both sides).
    horizon = compacted.core.pruned_version
    assert ([i.commit_version
             for i in compacted.fetch_remote_writesets(horizon, replica="obs")]
            == [i.commit_version
                for i in replayed.fetch_remote_writesets(horizon, replica="obs")])


# ------------------------------------------------- state-transfer package

def test_state_transfer_package_round_trip():
    from repro.middleware.certifier import CertifierConfig
    from repro.middleware.sharded_certifier import ShardedCertifierService

    service = ShardedCertifierService(CertifierConfig(shards=2))
    service.register_replica("r1")
    for i in range(8):
        version = service.system_version
        service.certify(_request([("t0", i)], version, origin="r1"))
    service.core.note_replica_version("r1", 6)
    service.core.collect_garbage(headroom=2)
    package = service.export_state_transfer()
    package.validate()
    assert package.horizon == service.core.pruned_version
    assert package.size_bytes() > 0
    standby = ShardedCertifierService.from_state_transfer(
        package, partitioner=service.core.partitioner)
    assert standby.system_version == service.system_version
    assert standby.core.pruned_version == service.core.pruned_version
    assert standby.core.low_water_mark() == service.core.low_water_mark()
    # The standby certifies where the live service left off.
    result = standby.certify(_request([("t0", 99)], standby.system_version))
    assert result.committed
    with pytest.raises(RecoveryError):
        ShardedCertifierService.from_state_transfer(package.corrupted_copy())


def test_state_transfer_package_direct_capture():
    certifier = ReplicatedShardedCertifier(2)
    _drive(certifier, 5)
    package = StateTransferPackage.capture(certifier.core)
    package.validate()
    assert package.num_shards == 2
    assert len(package.rounds) == 5
    with pytest.raises(RecoveryError):
        package.corrupted_copy().validate()


# ------------------------------------------------- the timing model

def test_bootstrap_timing_matches_section_9_6_calibration():
    model = RecoveryTimingModel()
    # With no snapshot, one hour's worth of suffix is the paper's "about 1
    # second ... for each hour of down time".
    one_hour_entries = model.writesets_missed(1.0)
    assert model.certifier_bootstrap_seconds(0, one_hour_entries) == \
        pytest.approx(model.certifier_transfer_seconds(1.0))
    assert model.certifier_transfer_seconds(1.0) == pytest.approx(0.88, abs=0.05)
    # Components add, and both scale linearly.
    assert model.certifier_bootstrap_seconds(60 * 1024 * 1024, 0) == \
        pytest.approx(1.0)
    assert model.snapshot_transfer_seconds(2 * 60 * 1024 * 1024) == \
        pytest.approx(2 * model.snapshot_transfer_seconds(60 * 1024 * 1024))
    assert model.log_suffix_transfer_seconds(2000) == \
        pytest.approx(2 * model.log_suffix_transfer_seconds(1000))
    # Custom entry size overrides the TPC-W 275 B default.
    assert model.log_suffix_transfer_seconds(100, entry_bytes=550) == \
        pytest.approx(2 * model.log_suffix_transfer_seconds(100))


def test_bootstrap_plan_estimates_scale_with_state():
    small = _compacted_with_down_node(extra=2)
    large = _compacted_with_down_node(extra=14)
    plan_small = plan_node_bootstrap(small.groups, 0, 2)
    plan_large = plan_node_bootstrap(large.groups, 0, 2)
    assert plan_large.suffix_entries >= plan_small.suffix_entries
    assert plan_large.estimated_seconds >= plan_small.estimated_seconds
    report = bootstrap_group_node(small.groups, 0, 2)
    assert report.plan.estimated_seconds == plan_small.estimated_seconds
