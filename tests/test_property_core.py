"""Property-based tests (hypothesis) for the protocol core."""

from hypothesis import given, settings, strategies as st

from repro.core.artificial_conflicts import ArtificialConflictDetector
from repro.core.certification import CertificationRequest, RemoteWriteSetInfo, Certifier
from repro.core.group_commit import GroupCommitBatcher
from repro.core.ordering import CommitSequencer
from repro.core.writeset import WriteSet, make_writeset

# Small alphabets keep conflicts frequent enough to be interesting.
keys = st.integers(min_value=0, max_value=6)
writesets = st.lists(keys, min_size=1, max_size=4).map(
    lambda ks: make_writeset([("t", k) for k in ks])
)


@given(st.lists(writesets, min_size=0, max_size=30))
@settings(max_examples=60, deadline=None)
def test_certifier_log_is_always_a_dense_conflict_free_history(batches):
    """Any two writesets committed at overlapping intervals never conflict."""
    certifier = Certifier()
    start_versions = []
    for writeset in batches:
        start = certifier.system_version.version
        result = certifier.certify(
            CertificationRequest(tx_start_version=start, writeset=writeset,
                                 replica_version=start)
        )
        if result.committed:
            start_versions.append((start, result.tx_commit_version, writeset))
    # Commit versions are dense 1..N.
    versions = [v for _, v, _ in start_versions]
    assert versions == list(range(1, len(versions) + 1))
    # No committed writeset conflicts with one committed after its start.
    for start, version, writeset in start_versions:
        for other_start, other_version, other in start_versions:
            if other_version > start and other_version < version:
                assert not writeset.conflicts_with(other) or other_version <= start


@given(st.lists(writesets, min_size=2, max_size=12), st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_concurrent_conflicting_writesets_never_both_commit(batch, dup_index):
    """Two transactions with the same start version and overlapping writesets
    cannot both commit."""
    certifier = Certifier()
    start = 0
    outcomes = []
    for writeset in batch:
        result = certifier.certify(
            CertificationRequest(tx_start_version=start, writeset=writeset,
                                 replica_version=start)
        )
        outcomes.append((writeset, result.committed))
    committed = [w for w, ok in outcomes if ok]
    for i, a in enumerate(committed):
        for b in committed[i + 1:]:
            assert not a.conflicts_with(b)


@given(st.lists(writesets, min_size=0, max_size=15), st.integers(0, 20))
@settings(max_examples=60, deadline=None)
def test_remote_writesets_fill_the_gap_exactly(batch, replica_version):
    """The certifier returns exactly the versions in (replica_version, now]."""
    certifier = Certifier()
    for writeset in batch:
        start = certifier.system_version.version
        certifier.certify(CertificationRequest(start, writeset, start))
    system_version = certifier.system_version.version
    replica_version = min(replica_version, system_version)
    remote = certifier.fetch_remote_writesets(replica_version)
    assert [info.commit_version for info in remote] == list(
        range(replica_version + 1, system_version + 1)
    )


@given(st.lists(st.integers(1, 100), min_size=1, max_size=50, unique=True))
@settings(max_examples=80, deadline=None)
def test_sequencer_always_announces_a_prefix_in_order(sequence_numbers):
    """Whatever the durability order, announcements are a dense ordered prefix."""
    announced = []
    sequencer = CommitSequencer()
    dense = sorted(sequence_numbers)
    # Register a dense range 1..n but mark durable in the given arbitrary order.
    n = len(dense)
    for seq in range(1, n + 1):
        sequencer.register(seq, lambda s=seq: announced.append(s))
    order = [1 + (value % n) for value in sequence_numbers]
    seen = set()
    for seq in order:
        if seq in seen:
            continue
        seen.add(seq)
        sequencer.mark_durable(seq)
    for seq in range(1, n + 1):
        if seq not in seen:
            sequencer.mark_durable(seq)
    assert announced == list(range(1, n + 1))


@given(st.lists(st.integers(0, 1000), min_size=0, max_size=200))
@settings(max_examples=50, deadline=None)
def test_group_commit_batcher_never_loses_or_duplicates(records):
    """Everything enqueued is flushed exactly once, in order."""
    batcher = GroupCommitBatcher()
    flushed = []
    pending = list(records)
    index = 0
    while index < len(pending) or batcher.has_pending:
        # Enqueue a few, then flush whatever is pending.
        for _ in range(min(3, len(pending) - index)):
            batcher.enqueue(pending[index])
            index += 1
        if batcher.has_pending:
            batcher.take_batch()
            flushed.extend(batcher.complete_batch())
    assert flushed == records
    assert batcher.stats.records_flushed == len(records)


@given(st.lists(st.tuples(st.integers(0, 5), st.booleans()), min_size=0, max_size=12))
@settings(max_examples=80, deadline=None)
def test_submission_plan_preserves_order_and_conflict_freedom(spec):
    """Within any planned group, no two remote writesets conflict, and the
    overall order of commit versions is preserved."""
    infos = []
    for offset, (key, safe) in enumerate(spec):
        infos.append(
            RemoteWriteSetInfo(
                commit_version=offset + 1,
                writeset=make_writeset([("t", key)]),
                origin_replica="r",
                conflict_free_back_to=0 if safe else offset,
            )
        )
    plan = ArtificialConflictDetector().plan(infos, replica_version=0)
    flattened = [info.commit_version for group in plan.groups for info in group]
    assert flattened == [info.commit_version for info in infos]
    for group in plan.groups:
        for i, a in enumerate(group):
            for b in group[i + 1:]:
                assert not a.writeset.conflicts_with(b.writeset)
    assert plan.total_writesets == len(infos)
