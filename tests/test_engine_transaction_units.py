"""Unit tests for the engine transaction workspace and analysis helpers."""

import pytest

from repro.analysis.report import format_series, format_table
from repro.analysis.results import ResultTable
from repro.core.writeset import WriteOp
from repro.engine.transaction import EngineTransaction, TransactionStatus
from repro.errors import InvalidTransactionState


# ----------------------------------------------------------------- transaction workspace

def test_transaction_starts_active_and_readonly():
    txn = EngineTransaction(txn_id=1, snapshot_version=4)
    assert txn.is_active
    assert txn.is_readonly
    assert txn.snapshot_version == 4
    assert txn.extract_writeset().is_empty()


def test_buffered_writes_support_read_your_own_writes():
    txn = EngineTransaction(1, 0)
    txn.buffer_insert("t", 1, {"id": 1, "v": 10})
    hit, values = txn.buffered_read("t", 1)
    assert hit and values["v"] == 10
    txn.buffer_update("t", 1, {"v": 20})
    hit, values = txn.buffered_read("t", 1)
    assert hit and values["v"] == 20
    txn.buffer_delete("t", 1)
    hit, values = txn.buffered_read("t", 1)
    assert hit and values is None
    hit, _ = txn.buffered_read("t", 99)
    assert not hit


def test_writeset_collapses_multiple_writes_to_final_effect():
    txn = EngineTransaction(1, 0)
    txn.buffer_insert("t", 1, {"id": 1, "v": 1})
    txn.buffer_update("t", 1, {"v": 2})
    txn.buffer_update("t", 2, {"v": 5})
    txn.buffer_delete("t", 3)
    writeset = txn.extract_writeset()
    ops = {item.key: item.op for item in writeset}
    assert ops[1] is WriteOp.INSERT       # insert + update stays an insert
    assert ops[2] is WriteOp.UPDATE
    assert ops[3] is WriteOp.DELETE
    assert len(writeset) == 3
    assert txn.written_items() == frozenset({("t", 1), ("t", 2), ("t", 3)})


def test_transaction_state_machine_transitions():
    txn = EngineTransaction(1, 0)
    txn.buffer_update("t", 1, {"v": 1})
    txn.mark_prepared(9)
    assert txn.status is TransactionStatus.PREPARED
    assert txn.requested_commit_sequence == 9
    txn.mark_committed(9)
    assert txn.status is TransactionStatus.COMMITTED
    with pytest.raises(InvalidTransactionState):
        txn.mark_aborted()
    with pytest.raises(InvalidTransactionState):
        txn.buffer_update("t", 2, {"v": 2})


def test_aborted_transaction_cannot_commit():
    txn = EngineTransaction(1, 0)
    txn.mark_aborted("test")
    assert txn.abort_reason == "test"
    with pytest.raises(InvalidTransactionState):
        txn.mark_committed(5)


# ----------------------------------------------------------------- analysis helpers

def test_format_table_aligns_columns():
    rows = [{"system": "base", "tps": 735}, {"system": "tashkent-mw", "tps": 3657}]
    text = format_table(["system", "tps"], rows)
    lines = text.splitlines()
    assert lines[0].startswith("system")
    assert "3657" in text
    assert len(lines) == 4  # header + separator + two rows


def test_format_series_renders_pairs():
    text = format_series([(1, 100.0), (15, 3657.4)], unit="tps")
    assert "1:100.0tps" in text
    assert "15:3657.4tps" in text


def test_result_table_filter_and_columns():
    table = ResultTable(columns=("system", "replicas", "tps"))
    table.add_row({"system": "base", "replicas": 15, "tps": 735})
    table.add_row({"system": "tashkent-mw", "replicas": 15, "tps": 3657})
    table.add_row({"system": "base", "replicas": 1, "tps": 110})
    assert len(table) == 3
    assert table.column("system").count("base") == 2
    filtered = table.filter(system="base", replicas=15)
    assert len(filtered) == 1
    assert filtered.rows[0]["tps"] == 735
