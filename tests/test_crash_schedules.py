"""Crash-schedule coverage for the fault-tolerant sharded certifier.

Three layers:

* an **exhaustive grid** over every crash point × every certify index of a
  fixed workload that mixes single-shard, cross-shard and conflicting
  transactions with polls and GC — every cell must recover to the fault-free
  shards=1 oracle (``tests/faults.py`` asserts the equivalence inline);
* **Hypothesis cells**: generated workloads × crash points × crash indices ×
  shard counts, extending the PR 4 equivalence strategy to faulty runs;
* **quorum behaviour**: losing a majority of one shard's group surfaces as
  :class:`QuorumUnavailableError` (never a wrong decision) and only for the
  transactions that touch that shard; plus the simulated
  ``certifier_crash_schedule`` axis (deterministic outages, counted and
  costed).
"""

import pytest
from hypothesis import given, settings, strategies as st

from faults import CRASH_POINTS, run_crash_schedule
from repro.cluster.experiment import ExperimentConfig, run_experiment
from repro.cluster.sweeps import run_replica_sweep
from repro.consensus.sharded import ReplicatedShardedCertifier
from repro.core.certification import CertificationRequest
from repro.core.config import SystemKind, WorkloadName
from repro.core.writeset import WriteSet, make_writeset
from repro.errors import ConfigurationError, QuorumUnavailableError
from repro.recovery.sharded_recovery import recover_sharded_certifier

# ----------------------------------------------------------------- exhaustive grid

#: A workload whose five certifications cover the interesting shapes: a
#: multi-item (usually cross-shard) writeset, single-item writesets, a
#: guaranteed write-write conflict (fraction 0.0 snapshots at version 0),
#: plus polls and a GC round between them.
GRID_WORKLOAD = [
    ("certify", [(0, 1), (0, 2), (1, 3)], 1.0),
    ("certify", [(0, 4)], 1.0),
    ("certify", [(0, 1)], 0.0),
    ("poll",),
    ("certify", [(1, 3), (0, 5)], 1.0),
    ("gc",),
    ("certify", [(0, 2), (1, 6)], 0.5),
    ("poll",),
]
GRID_CERTIFY_COUNT = sum(1 for op in GRID_WORKLOAD if op[0] == "certify")


def test_harness_covers_at_least_seven_crash_points():
    assert len(CRASH_POINTS) >= 7
    assert len(set(CRASH_POINTS)) == len(CRASH_POINTS)


@pytest.mark.parametrize("crash_point", CRASH_POINTS)
def test_grid_every_crash_point_and_request_recovers_to_oracle(crash_point):
    fired_somewhere = False
    for crash_at in range(GRID_CERTIFY_COUNT):
        report = run_crash_schedule(
            GRID_WORKLOAD, shards=2,
            crash_point=crash_point, crash_at_request=crash_at)
        fired_somewhere = fired_somewhere or report["crash_fired"]
        if report["crash_fired"]:
            assert report["crashes"] == 1
            assert report["recoveries"] >= 1
    # Every point is reachable by some cell of this workload (commit-path
    # points cannot fire on the aborting request, but others commit).
    assert fired_somewhere


def test_grid_three_shards_spot_check():
    for crash_at in (0, GRID_CERTIFY_COUNT - 1):
        for crash_point in ("mid-flush", "post-flush", "mid-directory-rebuild"):
            report = run_crash_schedule(
                GRID_WORKLOAD, shards=3,
                crash_point=crash_point, crash_at_request=crash_at)
            assert report["crash_fired"]


def test_fault_free_run_matches_oracle():
    report = run_crash_schedule(GRID_WORKLOAD, shards=2, crash_point=None)
    assert report["crashes"] == 0
    assert report["commits"] == 4  # one op is a guaranteed conflict


# ----------------------------------------------------------------- Hypothesis cells

_entries = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1),
              st.integers(min_value=0, max_value=9)),
    min_size=1, max_size=4)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("certify"), _entries, st.floats(0.0, 1.0)),
        st.just(("poll",)),
        st.just(("gc",)),
    ),
    min_size=1, max_size=25)


@given(operations=_ops,
       shards=st.integers(min_value=1, max_value=3),
       crash_point=st.sampled_from(CRASH_POINTS),
       crash_at=st.integers(min_value=0, max_value=24))
@settings(max_examples=60, deadline=None)
def test_property_crashing_runs_recover_to_shards1_oracle(
        operations, shards, crash_point, crash_at):
    """Workload × crash-schedule cells: decisions, versions and replica
    state after recovery equal the fault-free shards=1 oracle (the
    equivalence assertions live inside the harness)."""
    run_crash_schedule(operations, shards=shards,
                       crash_point=crash_point, crash_at_request=crash_at)


# ----------------------------------------------------------------- quorum behaviour

def _request(writeset: WriteSet, version: int) -> CertificationRequest:
    return CertificationRequest(
        tx_start_version=version, writeset=writeset,
        replica_version=version, origin_replica="client")


def _key_on_shard(certifier: ReplicatedShardedCertifier, shard_id: int,
                  table: str = "t0") -> object:
    for key in range(1000):
        if certifier.partitioner.shard_of((table, key)) == shard_id:
            return key
    raise AssertionError("no key found for shard")  # pragma: no cover


def test_quorum_loss_on_one_shard_only_stalls_that_shard():
    certifier = ReplicatedShardedCertifier(2, nodes_per_shard=3)
    key0 = _key_on_shard(certifier, 0)
    key1 = _key_on_shard(certifier, 1)
    certifier.groups.crash_node(1, 0)
    certifier.groups.crash_node(1, 2)
    # Shard 1 has no majority: updates touching it are refused, loudly.
    with pytest.raises(QuorumUnavailableError):
        certifier.certify(_request(make_writeset([("t0", key1)]), 0))
    with pytest.raises(QuorumUnavailableError):
        certifier.certify(_request(make_writeset([("t0", key0), ("t0", key1)]), 0))
    # Nothing was mutated by the refused cross-shard request.
    assert certifier.core.last_version == 0
    # Shard 0 updates and read-only transactions proceed.
    assert certifier.certify(_request(make_writeset([("t0", key0)]), 0)).committed
    assert certifier.certify(_request(WriteSet(), 1)).committed
    # A single recovered node restores the majority.
    certifier.groups.recover_node(1, 0)
    assert certifier.certify(_request(make_writeset([("t0", key1)]), 1)).committed


def test_shard_leader_crash_fails_over_and_continues():
    certifier = ReplicatedShardedCertifier(2, nodes_per_shard=3)
    key0 = _key_on_shard(certifier, 0)
    assert certifier.certify(_request(make_writeset([("t0", key0)]), 0)).committed
    crashed = certifier.groups.crash_leader(0)
    result = certifier.certify(_request(make_writeset([("t0", key0)]), 1))
    assert result.committed
    assert certifier.groups.leader_id(0) != crashed
    assert certifier.stats.per_shard[0].leader_changes == 1


def test_crashed_coordinator_refuses_requests_until_recovered():
    from repro.core.sharding import ShardedCertifier
    from repro.errors import RecoveryError

    certifier = ReplicatedShardedCertifier(2, nodes_per_shard=3)
    certifier.crash()
    assert certifier.crashed
    assert "crashed" in repr(certifier)
    with pytest.raises(RecoveryError):
        certifier.certify(_request(make_writeset([("t0", 1)]), 0))
    with pytest.raises(RecoveryError):
        certifier.fetch_remote_writesets(0)
    with pytest.raises(RecoveryError):
        certifier.note_replica_version("r", 0)
    with pytest.raises(RecoveryError):
        certifier.collect_garbage()
    # A recovered coordinator must cover the same shards as the groups.
    with pytest.raises(RecoveryError):
        certifier.adopt_core(ShardedCertifier(3), {})
    recover_sharded_certifier(certifier)
    assert not certifier.crashed
    assert "version=0" in repr(certifier)


def test_recovery_below_quorum_is_refused():
    certifier = ReplicatedShardedCertifier(2, nodes_per_shard=3)
    key0 = _key_on_shard(certifier, 0)
    certifier.certify(_request(make_writeset([("t0", key0)]), 0))
    certifier.crash()
    certifier.groups.crash_node(0, 1)
    certifier.groups.crash_node(0, 2)
    with pytest.raises(QuorumUnavailableError):
        recover_sharded_certifier(certifier)
    assert certifier.crashed
    # With the majority back, the same call succeeds.
    certifier.groups.recover_node(0, 1)
    report = recover_sharded_certifier(certifier)
    assert report.rounds_recovered == 1
    assert not certifier.crashed


# ----------------------------------------------------------------- simulated outages

def _sim_config(**overrides) -> ExperimentConfig:
    base = dict(
        system=SystemKind.TASHKENT_MW,
        workload=WorkloadName.ALL_UPDATES,
        num_replicas=2,
        certifier_shards=2,
        certifier_max_flush_batch=8,
        warmup_ms=100.0,
        measure_ms=900.0,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def test_sim_crash_schedule_is_deterministic_and_counted():
    config = _sim_config(certifier_crash_schedule=((0, 300.0, 600.0),))
    first = run_experiment(config)
    second = run_experiment(config)
    assert first.throughput_tps == second.throughput_tps
    assert first.completed_transactions == second.completed_transactions
    assert first.utilization["certifier_crash_events"] == 1.0
    assert first.utilization["certifier_downtime_ms"] == pytest.approx(300.0)
    assert first.utilization["certifier_stalled_requests"] > 0


def test_sim_crash_schedule_costs_throughput():
    steady = run_experiment(_sim_config())
    faulty = run_experiment(_sim_config(certifier_crash_schedule=((0, 300.0, 600.0),)))
    assert faulty.throughput_tps < steady.throughput_tps


def test_sim_crash_schedule_on_single_shard_certifier():
    # Any schedule routes to the sharded node, whose 1-shard core is
    # equivalence-tested against the seed certifier.
    result = run_experiment(_sim_config(
        certifier_shards=1, certifier_crash_schedule=((0, 300.0, 500.0),)))
    assert result.utilization["certifier_crash_events"] == 1.0
    assert result.utilization["certifier_shards"] == 1.0


def test_sim_crash_schedule_validation():
    with pytest.raises(ConfigurationError):
        _sim_config(certifier_crash_schedule=((5, 100.0, 200.0),))
    with pytest.raises(ConfigurationError):
        _sim_config(certifier_crash_schedule=((0, 300.0, 200.0),))
    # Overlapping windows on the same shard would double-count the outage
    # and strand transactions parked on the replaced recovery event.
    with pytest.raises(ConfigurationError):
        _sim_config(certifier_crash_schedule=((0, 100.0, 500.0), (0, 200.0, 300.0)))
    # ...and the ReplicationConfig front door agrees (shared validator).
    from repro.core.config import ReplicationConfig
    with pytest.raises(ConfigurationError):
        ReplicationConfig(certifier_shards=2,
                          certifier_crash_schedule=((0, 100.0, 500.0),
                                                    (0, 200.0, 300.0)))
    # Distinct shards may overlap, and same-shard windows may touch.
    _sim_config(certifier_crash_schedule=((0, 100.0, 500.0), (1, 200.0, 300.0)))
    _sim_config(certifier_crash_schedule=((0, 100.0, 200.0), (0, 200.0, 300.0)))


def test_sim_touching_crash_windows_behave_as_one_outage():
    joined = run_experiment(_sim_config(
        certifier_crash_schedule=((0, 300.0, 450.0), (0, 450.0, 600.0))))
    single = run_experiment(_sim_config(
        certifier_crash_schedule=((0, 300.0, 600.0),)))
    assert joined.utilization["certifier_downtime_ms"] == pytest.approx(300.0)
    assert joined.utilization["certifier_crash_events"] == 2.0
    # Throughput matches the single 300 ms window: nobody wakes up (or is
    # stranded) at the 450 ms seam.
    assert joined.throughput_tps == pytest.approx(single.throughput_tps, rel=0.05)
    # And the cluster fully recovers after the last window.
    steady = run_experiment(_sim_config())
    assert joined.throughput_tps > 0.5 * steady.throughput_tps


def test_sweep_accepts_crash_schedule_axis():
    sweep = run_replica_sweep(
        WorkloadName.ALL_UPDATES,
        systems=(SystemKind.TASHKENT_MW,),
        replica_counts=(1,),
        certifier_shards=2,
        certifier_crash_schedule=((0, 200.0, 400.0),),
        warmup_ms=100.0,
        measure_ms=500.0,
    )
    point = sweep.points[0]
    assert point.result.utilization["certifier_crash_events"] == 1.0
