"""Live backend vs functional oracle: decision/version/state equivalence.

The live cluster is real processes over real sockets, but it is built from
the *same* certifier service, proxy and engine as the functional backend —
so driving the identical deterministic transaction sequence against both
must produce identical certification decisions, identical commit versions,
identical replica table states and the identical GC horizon.  Any
divergence means the wire/process layer changed semantics, which is exactly
what these tests exist to catch.
"""

from __future__ import annotations

import pytest

from repro.core.config import ReplicationConfig, SystemKind
from repro.live.cluster import LiveCluster
from repro.middleware.systems import build_replicated_system
from repro.sim.rng import RandomStreams
from repro.workloads import workload_by_name

pytestmark = pytest.mark.live

SEED = 7
REFRESH_EVERY = 5


def drive_functional(workload, config, transactions):
    """Fault-free in-process run: the oracle."""
    system = build_replicated_system(config)
    system.create_tables_from_schemas(workload.schemas())
    system.load_initial_data(workload.setup)
    sessions = system.sessions_round_robin(len(system.replicas))
    rng = RandomStreams(SEED)
    decisions = []
    for sequence in range(transactions):
        index = sequence % len(sessions)
        decisions.append(workload.run_transaction(
            sessions[index], rng, client_index=index, sequence=sequence))
        if (sequence + 1) % REFRESH_EVERY == 0:
            system.refresh_all()
    system.refresh_all()
    states = {
        replica.name: {
            schema.name: replica.database.table(schema.name).snapshot_state(
                replica.database.current_version)
            for schema in workload.schemas()
        }
        for replica in system.replicas
    }
    return {
        "decisions": decisions,
        "system_version": system.certifier.system_version,
        "replica_versions": {r.name: r.replica_version for r in system.replicas},
        "states": states,
        "replication_horizon": system.certifier.replication_horizon(),
    }


def drive_live(workload, config, transactions, tmp_path):
    """The same sequence against real node processes."""
    with LiveCluster(config, workload.schemas(), run_dir=tmp_path,
                     keep_dir=True) as cluster:
        cluster.load_initial_data(workload)
        sessions = [cluster.session(name) for name in cluster.replicas]
        rng = RandomStreams(SEED)
        decisions = []
        for sequence in range(transactions):
            index = sequence % len(sessions)
            decisions.append(workload.run_transaction(
                sessions[index], rng, client_index=index, sequence=sequence))
            if (sequence + 1) % REFRESH_EVERY == 0:
                cluster.refresh_all()
        cluster.refresh_all()
        states = {
            name: {schema.name: cluster.dump_table(name, schema.name)
                   for schema in workload.schemas()}
            for name in cluster.replicas
        }
        return {
            "decisions": decisions,
            "system_version": cluster.system_version(),
            "replica_versions": {name: cluster.replica_version(name)
                                 for name in cluster.replicas},
            "states": states,
            "replication_horizon": cluster.replication_horizon(),
        }


def assert_equivalent(live, oracle):
    assert live["decisions"] == oracle["decisions"]
    assert live["system_version"] == oracle["system_version"]
    assert live["replica_versions"] == oracle["replica_versions"]
    assert live["replication_horizon"] == oracle["replication_horizon"]
    for replica, tables in oracle["states"].items():
        for table, state in tables.items():
            assert live["states"][replica][table] == state, (
                f"replica {replica} table {table} diverged"
            )


def test_allupdates_two_shards_three_replicas_matches_functional(tmp_path):
    config = ReplicationConfig(system=SystemKind.TASHKENT_MW, num_replicas=3,
                               certifier_shards=2, rng_seed=SEED)
    workload = workload_by_name("allupdates", num_replicas=3)
    transactions = 21
    oracle = drive_functional(workload, config, transactions)
    live = drive_live(workload_by_name("allupdates", num_replicas=3), config,
                      transactions, tmp_path)
    assert all(oracle["decisions"])  # AllUpdates never conflicts
    assert_equivalent(live, oracle)


def test_tpcb_single_shard_two_replicas_matches_functional(tmp_path):
    """TPC-B has real cross-replica conflicts: decisions must still match."""
    config = ReplicationConfig(system=SystemKind.TASHKENT_MW, num_replicas=2,
                               certifier_shards=1, rng_seed=SEED)
    workload = workload_by_name("tpcb", num_replicas=2)
    transactions = 24
    oracle = drive_functional(workload, config, transactions)
    live = drive_live(workload_by_name("tpcb", num_replicas=2), config,
                      transactions, tmp_path)
    assert not all(oracle["decisions"]), "expected some SI conflicts in TPC-B"
    assert_equivalent(live, oracle)


def test_exactly_once_table_counts_every_commit_once(tmp_path):
    """Fault-free sanity for the tx table: one admit per transaction id."""
    config = ReplicationConfig(system=SystemKind.TASHKENT_MW, num_replicas=2,
                               certifier_shards=2, rng_seed=SEED)
    workload = workload_by_name("allupdates", num_replicas=2)
    with LiveCluster(config, workload.schemas(), run_dir=tmp_path,
                     keep_dir=True) as cluster:
        cluster.load_initial_data(workload)
        sessions = [cluster.session(name) for name in cluster.replicas]
        rng = RandomStreams(SEED)
        for sequence in range(10):
            assert workload.run_transaction(
                sessions[sequence % 2], rng,
                client_index=sequence % 2, sequence=sequence)
        stats = cluster.scheduler_stats()
        # 10 client commits + the loader's setup commit, each admitted once;
        # no duplicate certification ever reached the admission path.
        assert stats["tx_admits"] == 11
        assert stats["tx_table_size"] == 11
        assert stats["duplicate_tx_hits"] == 0
        assert stats["wal_resent_batches"] == 0


def test_hot_row_write_write_block_aborts_no_wait(tmp_path):
    """Two live sessions on one replica racing one row: the loser must not
    wedge a worker thread waiting for the winner's lock — the replica runs a
    no-wait first-updater-wins policy and aborts the blocked writer (reason
    ``ww-block``), and a retry after the winner commits goes through.  TPC-B
    with concurrent clients dies on an unhandled ``LockBlockedError`` without
    this."""
    from repro.engine.table import TableSchema
    from repro.errors import TransactionAborted

    config = ReplicationConfig(system=SystemKind.TASHKENT_MW, num_replicas=1,
                               certifier_shards=1, rng_seed=SEED)
    schemas = [TableSchema("counters", ("id", "value"), "id")]
    with LiveCluster(config, schemas, run_dir=tmp_path,
                     keep_dir=True) as cluster:
        with cluster.session("replica-0") as loader:
            loader.begin()
            loader.insert("counters", "k", id="k", value=0)
            assert loader.commit().committed
        first = cluster.session("replica-0")
        second = cluster.session("replica-0")
        try:
            first.begin()
            first.update("counters", "k", value=1)
            # The read flushes the fused update: the write lock is held now.
            assert first.read("counters", "k")["value"] == 1
            second.begin()
            second.update("counters", "k", value=2)
            with pytest.raises(TransactionAborted) as info:
                second.read("counters", "k")  # deferred update surfaces here
            assert info.value.reason == "ww-block"
            assert first.commit().committed  # the winner is untouched
            second.begin()                   # the loser retries and wins
            second.update("counters", "k", value=2)
            assert second.commit().committed
            assert second.run_readonly("counters", "k")["value"] == 2
        finally:
            first.close()
            second.close()


def test_cli_run_summary_round_trips_typed(tmp_path, capsys):
    """``repro-cluster run`` prints a summary that survives json.loads with
    native types — no ``default=str`` coercion hiding a non-serialisable
    value (the bug this guards against printed ints as strings)."""
    import json

    from repro.live import cli

    assert cli.main(["run", "--workload", "allupdates", "--replicas", "2",
                     "--transactions", "8", "--clients", "2",
                     "--run-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    summary = json.loads(out[out.index("{"):])

    assert summary["workload"] == "allupdates"
    assert isinstance(summary["transactions"], int)
    assert isinstance(summary["committed"], int) and summary["committed"] == 8
    assert isinstance(summary["system_version"], int)
    assert all(isinstance(v, int)
               for v in summary["replica_versions"].values())
    assert isinstance(summary["replication_horizon"], int)
    assert all(isinstance(v, int)
               for wal in summary["shard_wals"] for v in wal.values())
    assert isinstance(summary["wall_clock_s"], float)
    driver = summary["driver"]
    assert isinstance(driver["clients"], int) and driver["clients"] == 2
    assert isinstance(driver["certs_per_sec"], float)
    assert isinstance(driver["fsyncs_per_commit"], float)
    # Bit-for-bit stable through a dump/load cycle: every leaf JSON-native.
    assert json.loads(json.dumps(summary)) == summary
