"""Unit tests for the certifier's persistent log."""

import pytest

from repro.core.certifier_log import (
    MODE_INDEXED,
    MODE_SCAN,
    MODE_VERIFY,
    CertifierLog,
    LogRecord,
)
from repro.core.writeset import make_writeset
from repro.errors import ConfigurationError, LogPrunedError


def record(version, *keys):
    return LogRecord(commit_version=version, writeset=make_writeset([("t", k) for k in keys]))


def build_log(n=5):
    log = CertifierLog()
    for version in range(1, n + 1):
        log.append(record(version, version))
    return log


def test_append_requires_dense_versions():
    log = CertifierLog()
    log.append(record(1, 1))
    with pytest.raises(ConfigurationError):
        log.append(record(3, 3))


def test_records_between_matches_remote_writeset_semantics():
    log = build_log(5)
    versions = [r.commit_version for r in log.records_between(2, 4)]
    assert versions == [3, 4]
    assert log.records_between(4, 2) == []
    assert [r.commit_version for r in log.records_after(3)] == [4, 5]


def test_conflicts_scans_only_requested_window():
    log = build_log(5)
    probe = make_writeset([("t", 2)])
    assert log.conflicts(probe, after_version=0)
    assert not log.conflicts(probe, after_version=2)  # version 2 not in window
    assert log.first_conflicting_version(probe, 0) == 2
    assert log.first_conflicting_version(make_writeset([("t", 99)]), 0) is None


def test_durable_horizon_is_monotonic_and_bounded():
    log = build_log(3)
    assert log.durable_version == 0
    assert log.pending_flush_count == 3
    log.mark_durable(2)
    assert log.durable_version == 2
    with pytest.raises(ConfigurationError):
        log.mark_durable(1)
    with pytest.raises(ConfigurationError):
        log.mark_durable(9)


def test_truncate_to_durable_simulates_crash():
    log = build_log(4)
    log.mark_durable(2)
    lost = log.truncate_to_durable()
    assert lost == 2
    assert log.last_version == 2


def test_replay_covers_only_durable_suffix():
    log = build_log(4)
    log.mark_durable(3)
    seen = []
    replayed = log.replay(lambda r: seen.append(r.commit_version), after_version=1)
    assert replayed == 2
    assert seen == [2, 3]


def test_extend_certification_tracks_horizon():
    log = CertifierLog()
    log.append(LogRecord(1, make_writeset([("t", 1)]), certified_back_to=0))
    log.append(LogRecord(2, make_writeset([("t", 2)]), certified_back_to=1))
    # Version 2 does not conflict with version 1, so it can be certified back to 0.
    assert log.extend_certification(2, 0)
    assert log.certified_back_to(2) == 0
    # Asking again (or for a later horizon) is a no-op that reports success.
    assert log.extend_certification(2, 1)


def test_extend_certification_detects_earlier_conflict():
    log = CertifierLog()
    log.append(LogRecord(1, make_writeset([("t", 7)]), certified_back_to=0))
    log.append(LogRecord(2, make_writeset([("t", 7)]), certified_back_to=1))
    assert not log.extend_certification(2, 0)
    assert log.certified_back_to(2) == 1  # horizon unchanged


def test_from_records_round_trip_and_sizes():
    log = build_log(3)
    rebuilt = CertifierLog.from_records(log.iter_records())
    assert rebuilt.last_version == 3
    assert rebuilt.durable_version == 3
    assert rebuilt.total_size_bytes() > 0
    assert len(rebuilt) == 3


def test_record_at_bounds_checked():
    log = build_log(2)
    with pytest.raises(KeyError):
        log.record_at(0)
    with pytest.raises(KeyError):
        log.record_at(3)
    assert log.record_at(2).commit_version == 2


# -- inverted index and conflict-check modes ---------------------------------


@pytest.mark.parametrize("mode", [MODE_INDEXED, MODE_SCAN, MODE_VERIFY])
def test_conflict_checks_agree_across_modes(mode):
    log = CertifierLog(mode=mode)
    for version, key in enumerate([1, 2, 1, 3], start=1):
        log.append(record(version, key))
    probe = make_writeset([("t", 1)])
    assert log.conflicts(probe, 0)
    assert log.first_conflicting_version(probe, 0) == 1
    assert log.first_conflicting_version(probe, 1) == 3
    assert log.first_conflicting_version(probe, 3) is None
    # Bounded windows (the extend-certification case).
    assert log.conflicts(probe, 0, 2)
    assert not log.conflicts(probe, 1, 2)
    assert log.conflicts(probe, 2, 3)


def test_index_tracks_multiple_writers_per_item():
    log = CertifierLog(mode=MODE_VERIFY)
    log.append(record(1, 7))
    log.append(record(2, 8))
    log.append(record(3, 7))
    probe = make_writeset([("t", 7)])
    # The intermediate writer must be found even though a later one exists.
    assert log.conflicts(probe, 0, 1)
    assert not log.conflicts(probe, 1, 2)
    assert log.conflicts(probe, 2, 3)


# -- garbage collection -------------------------------------------------------


def test_prune_to_discards_durable_prefix_only():
    log = build_log(6)
    log.mark_durable(4)
    assert log.prune_to(5) == 4  # clamped to the durable horizon
    assert log.pruned_version == 4
    assert log.last_version == 6
    assert log.retained_count == 2
    assert log.pruned_records_total == 4
    assert log.prune_to(4) == 0  # idempotent


def test_offset_aware_reads_after_prune():
    log = build_log(6)
    log.mark_durable(6)
    log.prune_to(3)
    assert [r.commit_version for r in log.records_after(3)] == [4, 5, 6]
    assert [r.commit_version for r in log.records_between(4, 6)] == [5, 6]
    assert log.record_at(5).commit_version == 5
    seen = []
    assert log.replay(lambda r: seen.append(r.commit_version), after_version=4) == 2
    assert seen == [5, 6]


def test_reads_below_gc_horizon_raise_log_pruned_error():
    log = build_log(6)
    log.mark_durable(6)
    log.prune_to(3)
    with pytest.raises(LogPrunedError):
        log.records_after(1)
    with pytest.raises(LogPrunedError):
        log.record_at(2)
    with pytest.raises(LogPrunedError):
        log.replay(lambda r: None, after_version=0)


def test_conflict_window_below_gc_horizon_is_conservative():
    log = build_log(6)
    log.mark_durable(6)
    log.prune_to(3)
    fresh = make_writeset([("t", 99)])
    # Genuinely conflict-free, but the window reaches into the pruned prefix:
    # the answer is the conservative "snapshot too old" conflict.
    assert log.conflicts(fresh, 0)
    assert log.first_conflicting_version(fresh, 0) == 3
    # At or above the horizon the precise answer returns.
    assert not log.conflicts(fresh, 3)
    assert log.first_conflicting_version(fresh, 3) is None


def test_prune_removes_index_entries():
    log = CertifierLog()
    log.append(record(1, 1))
    log.append(record(2, 1, 2))
    log.append(record(3, 3))
    log.mark_durable(3)
    assert log.index_item_count == 3
    log.prune_to(2)
    # Key 1's versions (1, 2) and key 2's version (2) are gone; key 3 stays.
    assert log.index_item_count == 1
    assert not log.conflicts(make_writeset([("t", 1)]), 2)
    assert log.conflicts(make_writeset([("t", 3)]), 2)


def test_extend_certification_below_gc_horizon_returns_false():
    log = CertifierLog()
    for version in range(1, 5):
        log.append(LogRecord(version, make_writeset([("t", version)]),
                             certified_back_to=version - 1))
    log.mark_durable(4)
    log.prune_to(2)
    # Version 4 cannot be vouched for back to 0: records 1-2 are pruned.
    assert not log.extend_certification(4, 0)
    assert log.certified_back_to(4) == 3


def test_from_records_rebuilds_a_pruned_suffix():
    log = build_log(6)
    log.mark_durable(6)
    log.prune_to(3)
    rebuilt = CertifierLog.from_records(log.iter_records())
    assert rebuilt.pruned_version == 3
    assert rebuilt.last_version == 6
    assert rebuilt.durable_version == 6
    assert rebuilt.record_at(4).commit_version == 4
    assert rebuilt.conflicts(make_writeset([("t", 5)]), 3)


# -- crash (suffix truncation) consistency ------------------------------------


@pytest.mark.parametrize("mode", [MODE_INDEXED, MODE_VERIFY])
def test_truncate_keeps_index_and_horizons_consistent(mode):
    log = CertifierLog(mode=mode)
    log.append(record(1, 1))
    log.append(record(2, 2))
    log.append(record(3, 1))
    log.append(record(4, 4))
    log.mark_durable(2)
    assert log.extend_certification(2, 0)
    lost = log.truncate_to_durable()
    assert lost == 2
    # Index entries of the lost suffix are gone: key 1's second writer
    # (version 3) and key 4's only writer (version 4).
    assert log.first_conflicting_version(make_writeset([("t", 1)]), 1) is None
    assert not log.conflicts(make_writeset([("t", 4)]), 0)
    assert log.index_item_count == 2
    # Extension horizons of lost records are dropped, surviving ones kept.
    assert log.certified_back_to(2) == 0
    assert log.certified_back_to(3) == 2  # back to default
    # The log certifies correctly after the crash: version 3's slot is free
    # again and the re-appended record is found by the index.
    log.append(record(3, 9))
    assert log.first_conflicting_version(make_writeset([("t", 9)]), 1) == 3
    assert log.first_conflicting_version(make_writeset([("t", 2)]), 1) == 2


def test_certify_after_crash_truncation_matches_fresh_log():
    """Crash-injection: decisions after truncate == decisions of a rebuilt log."""
    crashed = CertifierLog(mode=MODE_VERIFY)
    for version, keys in enumerate([(1,), (2, 3), (1, 4), (5,)], start=1):
        crashed.append(record(version, *keys))
    crashed.mark_durable(2)
    crashed.truncate_to_durable()
    fresh = CertifierLog.from_records(crashed.iter_records(), durable=True)
    for keys in [(1,), (3,), (4,), (5,), (1, 5)]:
        probe = make_writeset([("t", k) for k in keys])
        for after in range(0, 3):
            assert crashed.conflicts(probe, after) == fresh.conflicts(probe, after)
            assert (crashed.first_conflicting_version(probe, after)
                    == fresh.first_conflicting_version(probe, after))
