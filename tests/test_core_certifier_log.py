"""Unit tests for the certifier's persistent log."""

import pytest

from repro.core.certifier_log import CertifierLog, LogRecord
from repro.core.writeset import make_writeset
from repro.errors import ConfigurationError


def record(version, *keys):
    return LogRecord(commit_version=version, writeset=make_writeset([("t", k) for k in keys]))


def build_log(n=5):
    log = CertifierLog()
    for version in range(1, n + 1):
        log.append(record(version, version))
    return log


def test_append_requires_dense_versions():
    log = CertifierLog()
    log.append(record(1, 1))
    with pytest.raises(ConfigurationError):
        log.append(record(3, 3))


def test_records_between_matches_remote_writeset_semantics():
    log = build_log(5)
    versions = [r.commit_version for r in log.records_between(2, 4)]
    assert versions == [3, 4]
    assert log.records_between(4, 2) == []
    assert [r.commit_version for r in log.records_after(3)] == [4, 5]


def test_conflicts_scans_only_requested_window():
    log = build_log(5)
    probe = make_writeset([("t", 2)])
    assert log.conflicts(probe, after_version=0)
    assert not log.conflicts(probe, after_version=2)  # version 2 not in window
    assert log.first_conflicting_version(probe, 0) == 2
    assert log.first_conflicting_version(make_writeset([("t", 99)]), 0) is None


def test_durable_horizon_is_monotonic_and_bounded():
    log = build_log(3)
    assert log.durable_version == 0
    assert log.pending_flush_count == 3
    log.mark_durable(2)
    assert log.durable_version == 2
    with pytest.raises(ConfigurationError):
        log.mark_durable(1)
    with pytest.raises(ConfigurationError):
        log.mark_durable(9)


def test_truncate_to_durable_simulates_crash():
    log = build_log(4)
    log.mark_durable(2)
    lost = log.truncate_to_durable()
    assert lost == 2
    assert log.last_version == 2


def test_replay_covers_only_durable_suffix():
    log = build_log(4)
    log.mark_durable(3)
    seen = []
    replayed = log.replay(lambda r: seen.append(r.commit_version), after_version=1)
    assert replayed == 2
    assert seen == [2, 3]


def test_extend_certification_tracks_horizon():
    log = CertifierLog()
    log.append(LogRecord(1, make_writeset([("t", 1)]), certified_back_to=0))
    log.append(LogRecord(2, make_writeset([("t", 2)]), certified_back_to=1))
    # Version 2 does not conflict with version 1, so it can be certified back to 0.
    assert log.extend_certification(2, 0)
    assert log.certified_back_to(2) == 0
    # Asking again (or for a later horizon) is a no-op that reports success.
    assert log.extend_certification(2, 1)


def test_extend_certification_detects_earlier_conflict():
    log = CertifierLog()
    log.append(LogRecord(1, make_writeset([("t", 7)]), certified_back_to=0))
    log.append(LogRecord(2, make_writeset([("t", 7)]), certified_back_to=1))
    assert not log.extend_certification(2, 0)
    assert log.certified_back_to(2) == 1  # horizon unchanged


def test_from_records_round_trip_and_sizes():
    log = build_log(3)
    rebuilt = CertifierLog.from_records(log.iter_records())
    assert rebuilt.last_version == 3
    assert rebuilt.durable_version == 3
    assert rebuilt.total_size_bytes() > 0
    assert len(rebuilt) == 3


def test_record_at_bounds_checked():
    log = build_log(2)
    with pytest.raises(KeyError):
        log.record_at(0)
    with pytest.raises(KeyError):
        log.record_at(3)
    assert log.record_at(2).commit_version == 2
