"""Tests for replica/certifier recovery procedures and the timing model."""

import pytest

from repro.consensus.group import ReplicatedCertifierGroup
from repro.core.certification import CertificationRequest
from repro.core.writeset import make_writeset
from repro.engine.checkpoint import CheckpointStore
from repro.engine.database import Database
from repro.engine.recovery import verify_same_state
from repro.middleware.certifier import CertifierService
from repro.recovery.certifier_recovery import recover_certifier_node
from repro.recovery.replica_recovery import (
    recover_base_replica,
    recover_tashkent_mw_replica,
    replay_writesets_from_certifier,
)
from repro.recovery.timings import RecoveryTimingModel


def build_certified_history(n=6):
    """A certifier whose log contains ``n`` account updates."""
    certifier = CertifierService()
    for i in range(n):
        certifier.certify(
            CertificationRequest(
                tx_start_version=i,
                writeset=make_writeset([("accounts", i % 3)]),
                replica_version=i,
            )
        )
    return certifier


def fresh_db(sync=True):
    db = Database("replica", synchronous_commit=sync)
    db.create_table("accounts", ["id"])
    return db


def test_replay_writesets_brings_database_to_certifier_version():
    certifier = build_certified_history()
    db = fresh_db()
    replayed = replay_writesets_from_certifier(db, certifier.log)
    assert replayed == 6
    assert db.current_version == certifier.system_version
    # Replay is idempotent.
    assert replay_writesets_from_certifier(db, certifier.log) == 0


def test_tashkent_mw_recovery_from_dump_plus_replay():
    certifier = build_certified_history(4)
    db = fresh_db(sync=False)
    replay_writesets_from_certifier(db, certifier.log)
    store = CheckpointStore()
    store.add(db.dump())
    # More commits happen after the dump was taken.
    for i in range(4, 6):
        certifier.certify(
            CertificationRequest(tx_start_version=i, writeset=make_writeset([("accounts", i)]),
                                 replica_version=i)
        )
    report = recover_tashkent_mw_replica(store, certifier.log)
    assert report.used_checkpoint_version == 4
    assert report.writesets_replayed == 2
    assert report.final_version == certifier.system_version


def test_tashkent_mw_recovery_falls_back_to_older_dump():
    certifier = build_certified_history(3)
    db = fresh_db(sync=False)
    replay_writesets_from_certifier(db, certifier.log)
    store = CheckpointStore()
    store.add(db.dump())
    store.add(db.dump().corrupted_copy())  # crashed while writing the newer dump
    report = recover_tashkent_mw_replica(store, certifier.log)
    assert report.final_version == certifier.system_version


def test_base_recovery_wal_redo_plus_replay():
    certifier = build_certified_history(5)
    db = fresh_db(sync=True)
    # The replica applied only the first three writesets before crashing.
    for record in certifier.log.records_between(0, 3):
        db.apply_writeset(record.writeset, version=record.commit_version)
    schemas = [t.schema for t in db.tables.values()]
    db.simulate_crash()
    report = recover_base_replica(db.wal, schemas, certifier.log, database_name="replica")
    assert report.recovered_to_version == 3
    assert report.writesets_replayed == 2
    assert report.final_version == 5


def test_recovered_replicas_converge_to_the_same_state():
    certifier = build_certified_history(6)
    healthy = fresh_db()
    replay_writesets_from_certifier(healthy, certifier.log)

    store = CheckpointStore()
    crashed = fresh_db(sync=False)
    replay_writesets_from_certifier(crashed, certifier.log)
    store.add(crashed.dump())
    report = recover_tashkent_mw_replica(store, certifier.log)
    assert verify_same_state(healthy, report.database)


def test_replay_works_against_a_pruned_log_when_dump_is_recent_enough():
    certifier = build_certified_history(6)
    db = fresh_db()
    replay_writesets_from_certifier(db, certifier.log)  # db now at version 6
    for i in range(6, 9):
        certifier.certify(
            CertificationRequest(tx_start_version=i,
                                 writeset=make_writeset([("accounts", i)]),
                                 replica_version=i)
        )
    certifier.log.prune_to(5)  # GC below the replica's version
    assert certifier.log.pruned_version == 5
    assert replay_writesets_from_certifier(db, certifier.log) == 3
    assert db.current_version == certifier.system_version


def test_replay_refuses_a_log_pruned_beyond_the_database():
    from repro.errors import RecoveryError

    certifier = build_certified_history(6)
    db = fresh_db()  # never applied anything: version 0
    certifier.log.prune_to(4)
    with pytest.raises(RecoveryError):
        replay_writesets_from_certifier(db, certifier.log)


def test_certifier_node_recovery_report():
    group = ReplicatedCertifierGroup(3)
    for i in range(3):
        group.certify(
            CertificationRequest(tx_start_version=i, writeset=make_writeset([("t", i)]),
                                 replica_version=i)
        )
    group.crash_node(0)  # the leader
    group.elect_new_leader()
    group.certify(
        CertificationRequest(tx_start_version=3, writeset=make_writeset([("t", 99)]),
                             replica_version=3)
    )
    report = recover_certifier_node(group, 0)
    assert report.entries_transferred >= 1
    assert report.group_has_quorum
    assert group.logs_consistent()


def test_certifier_recovery_report_carries_the_leaders_gc_horizon():
    """Regression: the report's ``log_pruned_version`` must reflect the
    leader's actual GC horizon.  It used to always be 0 because the
    replicated group had no GC plumbing at all, so a replica planning its
    catch-up could wrongly conclude that log replay reaches back to
    version 0 when the records were long pruned."""
    group = ReplicatedCertifierGroup(3)
    for i in range(6):
        group.certify(
            CertificationRequest(tx_start_version=i,
                                 writeset=make_writeset([("t", i)]),
                                 replica_version=i,
                                 origin_replica="replica-0")
        )
    group.note_replica_version("replica-0", 5)
    assert group.collect_garbage() == 5
    group.crash_node(2)
    report = recover_certifier_node(group, 2)
    assert report.log_pruned_version == group.certifier.log.pruned_version == 5
    assert report.group_has_quorum


# ----------------------------------------------------------------- timing model (Section 9.6)

def test_timing_model_reproduces_paper_numbers():
    model = RecoveryTimingModel()
    timings = model.timings(downtime_hours=1.0)
    assert timings.dump_seconds == pytest.approx(230.0, rel=0.01)
    assert timings.restore_seconds == pytest.approx(140.0, rel=0.01)
    assert 2.0 <= timings.wal_recovery_seconds <= 4.0
    # ~222 seconds of writeset replay per hour of downtime.
    assert timings.writeset_replay_seconds == pytest.approx(224.0, rel=0.05)
    # ~1 second of certifier log transfer per hour of downtime.
    assert 0.2 <= timings.certifier_transfer_seconds <= 3.0
    # Base/API recovery is far faster than restoring a Tashkent-MW dump.
    assert timings.base_total_seconds < timings.tashkent_mw_total_seconds


def test_timing_model_scales_with_downtime_and_size():
    model = RecoveryTimingModel()
    assert model.writeset_replay_seconds(2.0) == pytest.approx(
        2 * model.writeset_replay_seconds(1.0)
    )
    assert model.dump_seconds(350 * 1024 * 1024) == pytest.approx(115.0, rel=0.01)
    assert model.certifier_log_growth_bytes_per_hour() == pytest.approx(
        56 * 3600 * 275, rel=0.01
    )
    assert model.writesets_missed(1.0) == 201_600
