"""kill -9 crash schedules against real node processes, oracle-checked.

Each test arms a deterministic *wedge* (the node freezes at an exact
protocol point), drives the workload until a commit hangs there, lands a
real SIGKILL, restarts the node via the harness on its original port, and
resolves the in-doubt commit through the exactly-once protocol.  The final
state must equal a fault-free functional run of the same logical
transaction sequence — proving recovery converged AND every transaction
took effect exactly once.

The four schedules map the in-process crash points of ``tests/faults.py``
onto processes:

==============================  ============================================
schedule                        crash point analogue
==============================  ============================================
shard killed while idle         pre-flush (nothing durable; batch resent)
shard wedge-after-sync + kill   mid-flush (durable, unacknowledged; the
                                resend must be deduplicated by batch seq)
replica wedge-before-commit     pre-certify (nothing admitted; the client
+ kill                          re-executes, exactly once)
replica wedge-after-commit      post-flush (admitted + durable + applied;
+ kill                          only the ack was lost — the client must NOT
                                re-execute)
==============================  ============================================
"""

from __future__ import annotations

import pytest

from repro.core.config import ReplicationConfig, SystemKind
from repro.live.client import CommitInDoubt
from repro.live.cluster import LiveCluster
from repro.live.wal import read_wal_batches
from repro.middleware.systems import build_replicated_system
from repro.sim.rng import RandomStreams
from repro.workloads import workload_by_name

pytestmark = pytest.mark.live

SEED = 11
TRANSACTIONS = 8
#: Short per-attempt socket timeout so a wedged node turns into
#: ``CommitInDoubt`` quickly; the kill is delivered afterwards, which is
#: fine — a wedged node is frozen at its crash point until then.
CLIENT_TIMEOUT_S = 3.0

CONFIG = ReplicationConfig(system=SystemKind.TASHKENT_MW, num_replicas=2,
                           certifier_shards=1, rng_seed=SEED)


def make_workload():
    return workload_by_name("allupdates", num_replicas=2)


def functional_oracle(config: ReplicationConfig = CONFIG):
    """Fault-free oracle: the same TRANSACTIONS sequence, no crashes."""
    workload = make_workload()
    system = build_replicated_system(config)
    system.create_tables_from_schemas(workload.schemas())
    system.load_initial_data(workload.setup)
    sessions = system.sessions_round_robin(len(system.replicas))
    rng = RandomStreams(SEED)
    for sequence in range(TRANSACTIONS):
        index = sequence % len(sessions)
        assert workload.run_transaction(sessions[index], rng,
                                        client_index=index, sequence=sequence)
    system.refresh_all()
    return {
        replica.name: replica.database.table("counters").snapshot_state(
            replica.database.current_version)
        for replica in system.replicas
    }


def assert_matches_oracle(cluster: LiveCluster) -> None:
    """Final counters on every live replica == the fault-free oracle's."""
    cluster.refresh_all()
    oracle = functional_oracle(cluster.config)
    for name in cluster.replicas:
        assert cluster.dump_table(name, "counters") == oracle[name], (
            f"replica {name} diverged from the fault-free oracle"
        )


def assert_exactly_once(cluster: LiveCluster, *, admits: int) -> None:
    """Every admitted transaction appears once in the tx table and the WAL."""
    stats = cluster.scheduler_stats()
    assert stats["tx_admits"] == admits, stats
    # The WAL holds each batch seq exactly once, strictly increasing — a
    # duplicate admit would show up as a repeated or out-of-order seq.
    batches = read_wal_batches(cluster.harness.run_dir / "shard-0.wal")
    seqs = [batch["seq"] for batch in batches]
    assert seqs == sorted(set(seqs)), f"duplicate/reordered WAL batches: {seqs}"


def run_sequence(cluster, workload, sessions, rng, sequences):
    for sequence in sequences:
        index = sequence % len(sessions)
        assert workload.run_transaction(sessions[index], rng,
                                        client_index=index, sequence=sequence)


def boot(tmp_path, config: ReplicationConfig = CONFIG,
         **cluster_kwargs) -> tuple[LiveCluster, object, list, RandomStreams]:
    workload = make_workload()
    cluster = LiveCluster(config, workload.schemas(), run_dir=tmp_path,
                          keep_dir=True, **cluster_kwargs)
    cluster.__enter__()
    cluster.load_initial_data(workload)
    sessions = [cluster.session(name, attempt_timeout_s=CLIENT_TIMEOUT_S)
                for name in cluster.replicas]
    return cluster, workload, sessions, RandomStreams(SEED)


def test_shard_sigkill_between_transactions_stalls_then_recovers(tmp_path):
    """Kill the only certifier shard while idle: the next commit stalls in
    the scheduler's resend loop, and completes once the shard is restarted —
    commit durability really is gated on the shard process."""
    cluster, workload, sessions, rng = boot(tmp_path)
    try:
        run_sequence(cluster, workload, sessions, rng, range(3))
        cluster.kill_shard(0)

        # Transaction 3 wedges inside certify (its WAL flush can't complete).
        with pytest.raises(CommitInDoubt) as caught:
            workload.run_transaction(sessions[3 % 2], rng,
                                     client_index=3 % 2, sequence=3)
        cluster.restart_shard(0)

        # The stalled certification drains through the restarted shard; the
        # tx table then knows the verdict.  The executing replica is alive,
        # so "unknown" would only mean "still in flight" — wait it out.
        outcome = sessions[3 % 2].resolve_commit(caught.value.tx_id,
                                                 wait_known_s=20.0)
        assert outcome is not None and outcome.committed
        sessions[3 % 2].reconnect()

        run_sequence(cluster, workload, sessions, rng, range(4, TRANSACTIONS))
        assert_matches_oracle(cluster)
        assert_exactly_once(cluster, admits=TRANSACTIONS + 1)  # +1 loader
    finally:
        cluster.__exit__(None, None, None)


def test_shard_sigkill_mid_flush_resend_is_deduplicated(tmp_path):
    """Wedge the shard right AFTER its fsync (ack lost), then kill it: the
    batch is durable, the scheduler resends it, and the restarted shard must
    acknowledge without re-appending — seq-based idempotence."""
    # Appends so far: loader=1, txns 0..2 = 3 → the 5th wal_append (txn 3)
    # fsyncs and then freezes before acknowledging.
    cluster, workload, sessions, rng = boot(
        tmp_path, shard_args={0: ["--wedge-after-sync", "5"]})
    try:
        run_sequence(cluster, workload, sessions, rng, range(3))
        with pytest.raises(CommitInDoubt) as caught:
            workload.run_transaction(sessions[3 % 2], rng,
                                     client_index=3 % 2, sequence=3)
        cluster.kill_shard(0)
        cluster.restart_shard(0, drop_args=("--wedge-after-sync",))

        outcome = sessions[3 % 2].resolve_commit(caught.value.tx_id,
                                                 wait_known_s=20.0)
        assert outcome is not None and outcome.committed
        sessions[3 % 2].reconnect()

        run_sequence(cluster, workload, sessions, rng, range(4, TRANSACTIONS))
        # The durable-but-unacknowledged batch was resent and skipped.
        assert cluster.shard_wal_stats(0)["duplicate_batches_skipped"] >= 1
        assert cluster.scheduler_stats()["wal_resent_batches"] >= 1
        assert_matches_oracle(cluster)
        assert_exactly_once(cluster, admits=TRANSACTIONS + 1)
    finally:
        cluster.__exit__(None, None, None)


def test_replica_sigkill_before_certification_client_reexecutes(tmp_path):
    """Wedge replica-1 BEFORE executing a commit, kill it: nothing was
    admitted, the status query says unknown, and the client re-executes the
    transaction — exactly once ends at one admit."""
    # Commit ops on replica-1: txns 1, 3, 5, 7 → wedge its 2nd commit (txn 3).
    cluster, workload, sessions, rng = boot(
        tmp_path, replica_args={"replica-1": ["--wedge-before-commit-op", "2"]})
    try:
        run_sequence(cluster, workload, sessions, rng, range(3))
        with pytest.raises(CommitInDoubt) as caught:
            workload.run_transaction(sessions[1], rng,
                                     client_index=1, sequence=3)
        cluster.kill_replica("replica-1")
        cluster.restart_replica("replica-1",
                                drop_args=("--wedge-before-commit-op",))
        # The reborn replica starts from an empty engine and resubscribes
        # from version 0; one refresh replays the full backfill (setup data
        # included) before it serves transactions again.
        cluster.refresh_all()
        sessions[1].reconnect()

        # The executing replica died before certifying: the scheduler never
        # saw the transaction, so re-executing is the exactly-once move.
        assert sessions[1].resolve_commit(caught.value.tx_id,
                                          wait_known_s=2.0) is None
        assert workload.run_transaction(sessions[1], rng_replay(rng, 3),
                                        client_index=1, sequence=3)

        run_sequence(cluster, workload, sessions, rng, range(4, TRANSACTIONS))
        stats = cluster.scheduler_stats()
        assert stats["status_queries"] >= 1
        assert_matches_oracle(cluster)
        assert_exactly_once(cluster, admits=TRANSACTIONS + 1)
    finally:
        cluster.__exit__(None, None, None)


def test_replica_sigkill_after_commit_ack_lost_client_must_not_reexecute(tmp_path):
    """Wedge replica-1 AFTER fully executing a commit (admitted, durable,
    propagated — only the client ack lost), kill it: the status query says
    committed and the client records the outcome WITHOUT re-executing."""
    cluster, workload, sessions, rng = boot(
        tmp_path, replica_args={"replica-1": ["--wedge-after-commit-op", "2"]})
    try:
        run_sequence(cluster, workload, sessions, rng, range(3))
        with pytest.raises(CommitInDoubt) as caught:
            workload.run_transaction(sessions[1], rng,
                                     client_index=1, sequence=3)
        cluster.kill_replica("replica-1")
        cluster.restart_replica("replica-1",
                                drop_args=("--wedge-after-commit-op",))
        cluster.refresh_all()  # replay the backfill into the fresh engine
        sessions[1].reconnect()

        outcome = sessions[1].resolve_commit(caught.value.tx_id,
                                             wait_known_s=2.0)
        assert outcome is not None and outcome.committed
        # NOT re-executed: txn 3's increment must appear exactly once, which
        # the oracle comparison below proves (a double increment would
        # diverge on its counter row).

        run_sequence(cluster, workload, sessions, rng, range(4, TRANSACTIONS))
        stats = cluster.scheduler_stats()
        assert stats["duplicate_tx_hits"] == 0  # status path, never re-certify
        assert_matches_oracle(cluster)
        assert_exactly_once(cluster, admits=TRANSACTIONS + 1)
    finally:
        cluster.__exit__(None, None, None)


def test_shard_sigkill_mid_batch_both_grouped_commits_resolve(tmp_path):
    """Two concurrent commits share ONE grouped WAL batch; the shard fsyncs
    that batch and freezes before acknowledging; kill -9 + restart: the
    scheduler's resend is deduplicated by seq and BOTH transactions resolve
    committed — group certification does not weaken exactly-once."""
    import threading

    # A wide batch window forces the two in-flight certifies into the same
    # round (one wal_append), rather than relying on scheduling luck.
    config = ReplicationConfig(system=SystemKind.TASHKENT_MW, num_replicas=2,
                               certifier_shards=1, rng_seed=SEED,
                               live_certify_batch_window_ms=150.0)
    workload = make_workload()
    # Appends: loader=1 → the grouped round is wal_append #2; it fsyncs,
    # then the shard freezes before acknowledging.
    cluster = LiveCluster(config, workload.schemas(), run_dir=tmp_path,
                          keep_dir=True,
                          shard_args={0: ["--wedge-after-sync", "2"]})
    cluster.__enter__()
    try:
        cluster.load_initial_data(workload)
        sessions = [cluster.session(name, attempt_timeout_s=CLIENT_TIMEOUT_S)
                    for name in cluster.replicas]
        rng = RandomStreams(SEED)

        caught: list[CommitInDoubt | None] = [None, None]
        barrier = threading.Barrier(2)

        def commit_one(index: int) -> None:
            barrier.wait()
            try:
                workload.run_transaction(sessions[index], rng,
                                         client_index=index, sequence=index)
            except CommitInDoubt as exc:
                caught[index] = exc

        threads = [threading.Thread(target=commit_one, args=(index,))
                   for index in (0, 1)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(caught), f"both commits must wedge in doubt, got {caught}"

        cluster.kill_shard(0)
        cluster.restart_shard(0, drop_args=("--wedge-after-sync",))

        for index in (0, 1):
            outcome = sessions[index].resolve_commit(caught[index].tx_id,
                                                     wait_known_s=20.0)
            assert outcome is not None and outcome.committed, (index, outcome)
            sessions[index].reconnect()

        # The grouped round landed as ONE batch holding both records, was
        # durable before the kill, and the resend was skipped by seq.
        batches = read_wal_batches(cluster.harness.run_dir / "shard-0.wal")
        assert any(len(batch["payloads"]) >= 2 for batch in batches), (
            f"no grouped batch in the WAL: {[len(b['payloads']) for b in batches]}"
        )
        assert cluster.shard_wal_stats(0)["duplicate_batches_skipped"] >= 1
        assert cluster.scheduler_stats()["wal_resent_batches"] >= 1
        assert_exactly_once(cluster, admits=3)  # loader + the two commits

        # Both increments took effect exactly once (initial value is 0).
        cluster.refresh_all()
        probe = cluster.session("replica-0", attempt_timeout_s=CLIENT_TIMEOUT_S)
        probe.begin()
        for index, key in ((0, "r0-c0-0"), (1, "r1-c1-1")):
            row = probe.read("counters", key)
            assert row is not None and int(row["value"]) == 1, (key, row)
            assert row["note"] == f"seq-{index}"
        probe.abort()
        probe.close()
    finally:
        cluster.__exit__(None, None, None)


# ---------------------------------------------------------------------------
# scheduler failover (primary/standby pair, PR 10)
# ---------------------------------------------------------------------------

#: Same logical cluster as CONFIG plus the standby scheduler: shard WAL
#: payloads become full round entries a promoted standby rebuilds from.
FAILOVER_CONFIG = ReplicationConfig(system=SystemKind.TASHKENT_MW,
                                    num_replicas=2, certifier_shards=1,
                                    rng_seed=SEED,
                                    live_scheduler_standby=True)


def test_scheduler_sigkill_after_durable_round_standby_answers_retry(tmp_path):
    """Kill -9 the primary scheduler right AFTER a certification round's
    durable flush (admitted + on the shard WAL, ack never sent).  The
    promoted standby rebuilds decisions, versions and the exactly-once
    table from the shard WAL entries; the client's in-doubt commit resolves
    committed on the standby and is never re-executed."""
    # Rounds: loader=1, txns 0..2 = 3 → txn 3 is round 5; it flushes
    # durably, then the scheduler freezes before any ack leaves.
    cluster, workload, sessions, rng = boot(
        tmp_path, config=FAILOVER_CONFIG,
        scheduler_args=["--wedge-after-certify-round", "5"])
    try:
        status = cluster.standby_status()
        assert status["standby"] and not status["promoted"], status
        assert status["seeded"], "standby should warm-boot from the primary"

        run_sequence(cluster, workload, sessions, rng, range(3))
        with pytest.raises(CommitInDoubt) as caught:
            workload.run_transaction(sessions[1], rng,
                                     client_index=1, sequence=3)
        cluster.kill_scheduler()

        report = cluster.promote_standby()
        assert report["already"] is False
        # loader + txns 0..3 were all durable when the primary died.
        assert report["tx_table_rebuilt"] == 5, report
        assert report["system_version"] == 5, report

        # The in-doubt commit resolves from the standby's REBUILT table —
        # the surviving replica's certify retry is answered as a duplicate,
        # never re-admitted.
        outcome = sessions[1].resolve_commit(caught.value.tx_id,
                                             wait_known_s=20.0)
        assert outcome is not None and outcome.committed
        sessions[1].reconnect()

        run_sequence(cluster, workload, sessions, rng, range(4, TRANSACTIONS))
        assert_matches_oracle(cluster)
        assert_exactly_once(cluster, admits=TRANSACTIONS + 1)
    finally:
        cluster.__exit__(None, None, None)


def test_scheduler_sigkill_before_round_retry_completes_on_standby(tmp_path):
    """Kill -9 the primary BEFORE the round is admitted (nothing durable,
    nothing recorded).  The surviving replica's pipelined certify retry
    rides its fallback address to the promoted standby and is admitted
    there as a FRESH transaction — exactly once, with no lost commit."""
    cluster, workload, sessions, rng = boot(
        tmp_path, config=FAILOVER_CONFIG,
        scheduler_args=["--wedge-before-certify-round", "5"])
    try:
        run_sequence(cluster, workload, sessions, rng, range(3))
        with pytest.raises(CommitInDoubt) as caught:
            workload.run_transaction(sessions[1], rng,
                                     client_index=1, sequence=3)
        cluster.kill_scheduler()

        report = cluster.promote_standby()
        # Only loader + txns 0..2 ever reached the shard WAL.
        assert report["tx_table_rebuilt"] == 4, report
        assert report["system_version"] == 4, report

        # The executing replica is alive and still retrying txn 3's
        # certification; once the standby is promoted the retry is admitted
        # fresh and the status query turns definite — wait it out.
        outcome = sessions[1].resolve_commit(caught.value.tx_id,
                                             wait_known_s=20.0)
        assert outcome is not None and outcome.committed
        sessions[1].reconnect()

        run_sequence(cluster, workload, sessions, rng, range(4, TRANSACTIONS))
        stats = cluster.scheduler_stats()
        assert stats["promotions"] == 1
        assert_matches_oracle(cluster)
        assert_exactly_once(cluster, admits=TRANSACTIONS + 1)
    finally:
        cluster.__exit__(None, None, None)


def test_scheduler_sigkill_mid_grouped_round_both_commits_survive(tmp_path):
    """Two concurrent commits share ONE certification round; the primary is
    killed after that round's durable flush.  Both transactions must
    resolve committed on the promoted standby from the rebuilt table —
    group certification does not weaken exactly-once across failover."""
    import threading

    config = ReplicationConfig(system=SystemKind.TASHKENT_MW, num_replicas=2,
                               certifier_shards=1, rng_seed=SEED,
                               live_scheduler_standby=True,
                               live_certify_batch_window_ms=150.0)
    workload = make_workload()
    # Rounds: loader=1 → the grouped round is 2; durable, then frozen.
    cluster = LiveCluster(config, workload.schemas(), run_dir=tmp_path,
                          keep_dir=True,
                          scheduler_args=["--wedge-after-certify-round", "2"])
    cluster.__enter__()
    try:
        cluster.load_initial_data(workload)
        sessions = [cluster.session(name, attempt_timeout_s=CLIENT_TIMEOUT_S)
                    for name in cluster.replicas]
        rng = RandomStreams(SEED)

        caught: list[CommitInDoubt | None] = [None, None]
        barrier = threading.Barrier(2)

        def commit_one(index: int) -> None:
            barrier.wait()
            try:
                workload.run_transaction(sessions[index], rng,
                                         client_index=index, sequence=index)
            except CommitInDoubt as exc:
                caught[index] = exc

        threads = [threading.Thread(target=commit_one, args=(index,))
                   for index in (0, 1)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(caught), f"both commits must wedge in doubt, got {caught}"

        cluster.kill_scheduler()
        report = cluster.promote_standby()
        # loader + both grouped commits were durable as full WAL entries.
        assert report["tx_table_rebuilt"] == 3, report

        for index in (0, 1):
            outcome = sessions[index].resolve_commit(caught[index].tx_id,
                                                     wait_known_s=20.0)
            assert outcome is not None and outcome.committed, (index, outcome)
            sessions[index].reconnect()

        # One grouped batch holds both round entries; seqs stay strictly
        # increasing across the promotion (the standby's WAL device starts
        # above the shard's applied last_seq).
        batches = read_wal_batches(cluster.harness.run_dir / "shard-0.wal")
        assert any(len(batch["payloads"]) >= 2 for batch in batches), (
            f"no grouped batch in the WAL: {[len(b['payloads']) for b in batches]}"
        )
        assert_exactly_once(cluster, admits=3)  # loader + the two commits

        cluster.refresh_all()
        probe = cluster.session("replica-0", attempt_timeout_s=CLIENT_TIMEOUT_S)
        probe.begin()
        for index, key in ((0, "r0-c0-0"), (1, "r1-c1-1")):
            row = probe.read("counters", key)
            assert row is not None and int(row["value"]) == 1, (key, row)
            assert row["note"] == f"seq-{index}"
        probe.abort()
        probe.close()
    finally:
        cluster.__exit__(None, None, None)


def rng_replay(rng: RandomStreams, sequence: int) -> RandomStreams:
    """AllUpdates draws nothing from ``rng``, so replaying a transaction can
    reuse the live stream object; kept as a named hook so a future workload
    with rng draws fails loudly here instead of silently diverging."""
    return rng
