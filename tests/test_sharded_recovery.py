"""Invariants of the rebuilt sharded-certifier coordinator.

The recovery contract (``docs/recovery.md``): after any coordinator crash,
the directory rebuilt from the per-shard Paxos groups is *dense* over global
commit versions, every shard's local↔global map agrees with the directory,
the GC low-water horizon survives the restart, and an interrupted cross-
shard round resolves deterministically (completed from a surviving fragment
or aborted wholesale).  Plus the middleware failover hooks: a standby
:class:`ShardedCertifierService` rebuilt from an exported directory serves
re-subscribing replicas from their watermarks.
"""

import pytest

from faults import CertifierCrashed, CrashInjector
from repro.consensus.sharded import (
    ENTRY_COMMIT,
    ReplicatedShardedCertifier,
    ShardPaxosGroups,
)
from repro.core.certification import CertificationRequest
from repro.core.sharding import CertifierShard, ShardedCertifier
from repro.core.writeset import make_writeset
from repro.errors import RecoveryError
from repro.middleware.certifier import CertifierConfig
from repro.middleware.sharded_certifier import ShardedCertifierService
from repro.recovery.sharded_recovery import recover_sharded_certifier


def _request(entries, version, *, start=None, origin="replica-0"):
    return CertificationRequest(
        tx_start_version=version if start is None else start,
        writeset=make_writeset(entries),
        replica_version=version,
        origin_replica=origin,
    )


def _run_history(certifier: ReplicatedShardedCertifier, n: int = 12) -> None:
    """Commit ``n`` transactions spanning two tables (so fragments straddle
    shards), interleaving keys so re-writes are common."""
    for i in range(n):
        entries = [("t0", i % 5), ("t1", (i * 3) % 7)]
        result = certifier.certify(_request(entries, certifier.core.last_version))
        assert result.committed


# ----------------------------------------------------------------- rebuilt directory

def test_rebuilt_directory_is_dense_and_maps_agree():
    certifier = ReplicatedShardedCertifier(3, nodes_per_shard=3)
    _run_history(certifier, 15)
    before = [
        sorted(certifier.core.record_at(v).writeset.iter_item_ids())
        for v in range(1, certifier.core.last_version + 1)
    ]
    certifier.crash()
    report = recover_sharded_certifier(certifier)
    core = certifier.core

    assert report.rounds_recovered == 15
    assert core.last_version == 15
    assert core.durable_version == 15
    assert core.system_version.version == 15
    # Density: every version between the horizon and the head resolves.
    for version in range(core.pruned_version + 1, core.last_version + 1):
        record = core.record_at(version)
        assert record.commit_version == version
        assert sorted(record.writeset.iter_item_ids()) == before[version - 1]
        # Local↔global agreement, both directions, for every fragment.
        for shard_id, local in record.shard_locals:
            shard = core.shards[shard_id]
            assert shard.global_of(local) == version
            assert shard.local_horizon(version) >= local
    # The per-shard maps jointly cover exactly the directory.
    fragments = sum(len(core.record_at(v).shard_locals)
                    for v in range(1, core.last_version + 1))
    assert fragments == sum(len(shard.global_map()) for shard in core.shards)


def test_gc_low_water_survives_coordinator_restart():
    certifier = ReplicatedShardedCertifier(2, nodes_per_shard=3)
    _run_history(certifier, 10)
    certifier.note_replica_version("lagging-replica", 8)
    dropped = certifier.collect_garbage()
    assert dropped == 8
    assert certifier.core.pruned_version == 8

    certifier.crash()
    report = recover_sharded_certifier(certifier)
    assert report.pruned_version == 8
    assert certifier.core.pruned_version == 8
    assert certifier.core.last_version == 10
    # Below-horizon snapshots still get the conservative answer.
    result = certifier.certify(_request([("t0", 0)], 10, start=3))
    assert not result.committed
    assert result.conflicting_version == 8
    # Above-horizon certification proceeds with dense versions.
    result = certifier.certify(_request([("t0", 99)], 10))
    assert result.committed
    assert result.tx_commit_version == 11


def test_interrupted_cross_shard_round_is_completed_from_surviving_fragment():
    injector = CrashInjector("mid-flush", 3)
    certifier = ReplicatedShardedCertifier(2, nodes_per_shard=3,
                                           crash_hook=injector)
    # One key per shard, found through the deployment's own stable
    # partitioner, so the 4th request genuinely straddles both shards.
    shard0_keys = [k for k in range(100)
                   if certifier.partitioner.shard_of(("t0", k)) == 0]
    shard1_keys = [k for k in range(100)
                   if certifier.partitioner.shard_of(("t0", k)) == 1]
    cross_entries = None
    for i in range(4):
        entries = [("t0", shard0_keys[i]), ("t0", shard1_keys[i])]
        request = _request(entries, certifier.core.last_version)
        assert len(certifier.partitioner.split(request.writeset)) == 2
        if i == 3:
            cross_entries = entries
        injector.begin_request()
        try:
            certifier.certify(request, tx_id=i)
        except CertifierCrashed:
            break
    else:  # pragma: no cover - the injector must fire
        raise AssertionError("mid-flush crash did not fire")

    certifier.crash()
    report = recover_sharded_certifier(certifier)
    assert report.rounds_completed == 1
    assert report.fragments_replayed == 1
    assert report.rounds_recovered == 4
    # The exactly-once table answers the client's retry with the same
    # commit version the interrupted round was allocated.
    retry = certifier.certify(
        _request(cross_entries, certifier.core.last_version), tx_id=3)
    assert retry.committed
    assert retry.tx_commit_version == 4
    assert certifier.stats.replayed_acks == 1


def test_repeated_recovery_is_idempotent():
    certifier = ReplicatedShardedCertifier(2, nodes_per_shard=3)
    _run_history(certifier, 6)
    certifier.crash()
    first = recover_sharded_certifier(certifier)
    certifier.crash()
    second = recover_sharded_certifier(certifier)
    assert second.rounds_recovered == first.rounds_recovered == 6
    assert second.rounds_completed == 0
    assert second.system_version == first.system_version


# ----------------------------------------------------------------- admit idempotence

def test_admit_at_is_idempotent_and_rejects_gaps():
    shard = CertifierShard(0)
    fragment = make_writeset([("t", 1)])
    local = shard.admit(fragment, 0, global_version=5, origin_replica="r")
    assert shard.admit_at(fragment, 0, global_version=5, origin_replica="r") == local
    # The next global version installs normally through admit_at.
    second = shard.admit_at(make_writeset([("t", 2)]), 0, global_version=9,
                            origin_replica="r")
    assert second == local + 1
    assert shard.global_map() == (5, 9)
    # An already-installed middle version is answered idempotently too.
    assert shard.admit_at(fragment, 0, global_version=5, origin_replica="r") == local
    # A version that is neither installed nor next is a replay violation.
    with pytest.raises(RecoveryError):
        shard.admit_at(fragment, 0, global_version=7, origin_replica="r")


def test_rebuild_rejects_non_dense_versions():
    rounds = [
        (1, make_writeset([("t", 1)]), "r", 0),
        (3, make_writeset([("t", 2)]), "r", 0),
    ]
    with pytest.raises(RecoveryError):
        ShardedCertifier.rebuild(2, rounds)


# ----------------------------------------------------------------- shard groups

def test_shard_groups_fail_independently():
    groups = ShardPaxosGroups(2, nodes_per_shard=3)
    groups.crash_node(1, 0)
    groups.crash_node(1, 1)
    assert groups.has_quorum(0)
    assert not groups.has_quorum(1)
    assert not groups.all_have_quorum()
    assert groups.all_have_quorum([0])


def test_chosen_entries_union_read_survives_leader_holes():
    from repro.consensus.sharded import ShardLogEntry

    groups = ShardPaxosGroups(1, nodes_per_shard=3)
    entry_a = ShardLogEntry(kind=ENTRY_COMMIT, global_version=1,
                            writeset=make_writeset([("t", 1)]), touched=(0,))
    groups.append(0, entry_a)
    # Node 0 (the leader) misses the second append while down, then comes
    # back without a state transfer: its log has a hole.
    groups.crash_node(0, 0)
    entry_b = ShardLogEntry(kind=ENTRY_COMMIT, global_version=2,
                            writeset=make_writeset([("t", 2)]), touched=(0,))
    groups.append(0, entry_b)
    groups.group(0).nodes[0].up = True  # recover WITHOUT catch-up
    entries = groups.chosen_entries(0)
    assert [e.global_version for e in entries] == [1, 2]


# ----------------------------------------------------------------- middleware failover

def test_service_failover_rebuilds_from_exported_rounds():
    config = CertifierConfig(shards=2, durability_enabled=True,
                             gc_interval_requests=0, gc_headroom_versions=0)
    primary = ShardedCertifierService(config)
    subscription = primary.subscribe_replica("replica-0", 0)
    state: dict = {}
    seen = 0
    for i in range(8):
        result = primary.certify(CertificationRequest(
            tx_start_version=primary.system_version,
            writeset=make_writeset([("t0", i % 3), ("t1", i % 5)]),
            replica_version=primary.system_version,
            origin_replica="replica-0",
        ))
        assert result.committed
    primary.flush_propagation()
    for info in subscription.poll_flat():
        seen = info.commit_version
        for item_id in info.writeset.iter_item_ids():
            state[item_id] = info.commit_version
    # GC some prefix so the export starts above version 1.
    primary.register_replica("replica-0", 5)
    assert primary.collect_garbage() > 0
    base = primary.core.pruned_version
    rounds = primary.export_rounds()
    assert rounds[0][0] == base + 1

    # The primary dies; a standby is rebuilt from the exported directory.
    core = ShardedCertifier.rebuild(2, rounds, base_version=base)
    standby = ShardedCertifierService.from_recovered_core(core, config=config)
    assert standby.system_version == primary.system_version
    assert standby.core.pruned_version == base

    # The replica re-subscribes from its watermark and is backfilled.
    resubscription = standby.subscribe_replica("replica-0", seen)
    for info in resubscription.poll_flat():
        assert info.commit_version > seen
        seen = info.commit_version
        for item_id in info.writeset.iter_item_ids():
            state[item_id] = info.commit_version
    assert seen == standby.system_version

    # And the standby keeps certifying with dense global versions.
    result = standby.certify(CertificationRequest(
        tx_start_version=standby.system_version,
        writeset=make_writeset([("t0", 42)]),
        replica_version=standby.system_version,
        origin_replica="replica-0",
    ))
    assert result.committed
    assert result.tx_commit_version == 9
    standby.flush_propagation()
    tail = resubscription.poll_flat()
    assert [info.commit_version for info in tail] == [9]
