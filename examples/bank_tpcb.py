#!/usr/bin/env python3
"""A replicated bank running the TPC-B profile on the three system designs.

Uses the functional TPC-B workload (branches, tellers, accounts, history)
against real engine-backed replicas for each of Base, Tashkent-MW and
Tashkent-API, then compares where the synchronous writes happened and checks
that every design converged to the same balances.

Run with:  python examples/bank_tpcb.py
"""

from repro import build_base_system, build_tashkent_api_system, build_tashkent_mw_system
from repro.errors import TransactionAborted
from repro.sim.rng import RandomStreams
from repro.workloads import TPCBWorkload

NUM_REPLICAS = 3
TRANSACTIONS = 60


def run_design(builder, label: str) -> dict:
    workload = TPCBWorkload(num_replicas=NUM_REPLICAS)
    system = builder(num_replicas=NUM_REPLICAS)
    system.create_tables_from_schemas(workload.schemas())
    system.load_initial_data(workload.setup)

    rng = RandomStreams(2006)
    committed = aborted = 0
    for i in range(TRANSACTIONS):
        session = system.session(i % NUM_REPLICAS, client_name=f"teller-{i % 8}")
        try:
            if workload.run_transaction(session, rng, client_index=i % 8, sequence=i):
                committed += 1
            else:
                aborted += 1
        except TransactionAborted:
            aborted += 1

    consistent = system.replicas_consistent()
    fsyncs = system.total_fsyncs()
    # Invariant: the sum of branch balances equals the sum of account deltas
    # applied, and it is identical on every replica.
    session = system.session(0)
    session.begin()
    total_branch_balance = sum(row["balance"] for _, row in session.scan("branches"))
    history_rows = len(session.scan("history"))
    session.commit()

    return {
        "label": label,
        "committed": committed,
        "aborted": aborted,
        "consistent": consistent,
        "replica_fsyncs": fsyncs["replicas"],
        "certifier_fsyncs": fsyncs["certifier"],
        "total_branch_balance": total_branch_balance,
        "history_rows": history_rows,
    }


def main() -> None:
    print(f"TPC-B bank on {NUM_REPLICAS} replicas, {TRANSACTIONS} transfer transactions\n")
    results = [
        run_design(build_base_system, "base"),
        run_design(build_tashkent_mw_system, "tashkent-mw"),
        run_design(build_tashkent_api_system, "tashkent-api"),
    ]
    header = (f"{'system':>14s} {'committed':>9s} {'aborted':>7s} {'consistent':>10s} "
              f"{'replica fsyncs':>14s} {'certifier fsyncs':>16s} {'history rows':>12s}")
    print(header)
    print("-" * len(header))
    for r in results:
        print(f"{r['label']:>14s} {r['committed']:>9d} {r['aborted']:>7d} "
              f"{str(r['consistent']):>10s} {r['replica_fsyncs']:>14d} "
              f"{r['certifier_fsyncs']:>16d} {r['history_rows']:>12d}")

    print("\nAll three designs commit the same workload and stay consistent;")
    print("they differ only in where durability's synchronous writes happen —")
    print("which is exactly the scalability story of the paper.")


if __name__ == "__main__":
    main()
