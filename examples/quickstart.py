#!/usr/bin/env python3
"""Quickstart: a 3-replica Tashkent-MW cluster in a few lines.

Builds a replicated snapshot-isolation database, loads a tiny table, runs
update transactions through different replicas, and shows the core claim of
the paper in miniature: with durability united with ordering in the
middleware, the replicas never perform a synchronous commit write, yet no
committed update is ever lost (the certifier's log is the durable copy).

Run with:  python examples/quickstart.py
"""

from repro import build_base_system, build_tashkent_mw_system


def load_inventory(session) -> None:
    """Initial data, loaded through one replica and replicated to the rest."""
    session.begin()
    for item_id, (name, stock) in enumerate(
        [("keyboard", 25), ("mouse", 40), ("monitor", 12), ("dock", 7)]
    ):
        session.insert("inventory", item_id, id=item_id, name=name, stock=stock)
    outcome = session.commit()
    assert outcome.committed


def run_workload(system, label: str) -> None:
    """Ship one unit of every item, each order through a different replica."""
    for order, item_id in enumerate([0, 1, 2, 3, 0, 1]):
        session = system.session(order % len(system.replicas), client_name=f"client-{order}")
        session.begin()
        row = session.read("inventory", item_id)
        session.update("inventory", item_id, stock=row["stock"] - 1)
        outcome = session.commit()
        print(f"  [{label}] order {order} on replica {order % len(system.replicas)}: "
              f"{'committed' if outcome.committed else 'aborted'} "
              f"(global version {outcome.commit_version})")

    fsyncs = system.total_fsyncs()
    print(f"  [{label}] replicas consistent: {system.replicas_consistent()}")
    print(f"  [{label}] synchronous writes — replicas: {fsyncs['replicas']}, "
          f"certifier: {fsyncs['certifier']}")
    print(f"  [{label}] certifier writesets per fsync: "
          f"{system.certifier.writesets_per_fsync:.1f}")


def main() -> None:
    print("Tashkent-MW: durability united with ordering in the middleware")
    mw = build_tashkent_mw_system(num_replicas=3)
    mw.create_table("inventory", ["id", "name", "stock"])
    mw.load_initial_data(load_inventory)
    run_workload(mw, "tashkent-mw")

    print()
    print("Base: ordering in the middleware, durability in the database")
    base = build_base_system(num_replicas=3)
    base.create_table("inventory", ["id", "name", "stock"])
    base.load_initial_data(load_inventory)
    run_workload(base, "base")

    print()
    print("Note how Base pays synchronous writes at every replica for every")
    print("commit (serially!), while Tashkent-MW replicas commit in memory and")
    print("the certifier groups all writesets into far fewer disk writes.")


if __name__ == "__main__":
    main()
