#!/usr/bin/env python3
"""An online bookstore (TPC-W style) on a replicated Tashkent-API cluster.

Runs the shopping-mix workload — mostly browsing, 20% order placement —
through the functional TPC-W workload against real engine-backed replicas
using the extended ``COMMIT <version>`` API, then prints what the store sold
and verifies that every replica agrees.

Run with:  python examples/online_bookstore.py
"""

from repro import build_tashkent_api_system
from repro.errors import TransactionAborted
from repro.sim.rng import RandomStreams
from repro.workloads import TPCWWorkload

NUM_REPLICAS = 3
INTERACTIONS = 80


def main() -> None:
    workload = TPCWWorkload(num_replicas=NUM_REPLICAS)
    system = build_tashkent_api_system(num_replicas=NUM_REPLICAS)
    system.create_tables_from_schemas(workload.schemas())
    system.load_initial_data(workload.setup)

    rng = RandomStreams(1996)  # TPC-W's publication year
    committed = aborted = 0
    for i in range(INTERACTIONS):
        session = system.session(i % NUM_REPLICAS, client_name=f"browser-{i % 10}")
        try:
            if workload.run_transaction(session, rng, client_index=i % 10, sequence=i):
                committed += 1
            else:
                aborted += 1
        except TransactionAborted:
            aborted += 1

    session = system.session(0, client_name="reporting")
    session.begin()
    orders = session.scan("orders")
    lines = session.scan("order_line")
    revenue = sum(row["total"] for _, row in orders)
    session.commit()

    fsyncs = system.total_fsyncs()
    print(f"bookstore on {NUM_REPLICAS} replicas (Tashkent-API), "
          f"{INTERACTIONS} shopping-mix interactions")
    print(f"  committed: {committed}, aborted: {aborted}")
    print(f"  orders placed: {len(orders)} ({len(lines)} order lines), "
          f"revenue: {revenue}")
    print(f"  replicas consistent: {system.replicas_consistent()}")
    print(f"  synchronous writes — replicas: {fsyncs['replicas']}, "
          f"certifier: {fsyncs['certifier']}")
    print(f"  certifier version: {system.certifier.system_version} "
          f"(one per committed update transaction)")
    print()
    print("At this low update rate the grouped ordered commits barely matter —")
    print("exactly the paper's Figure 12 observation that Tashkent-API matches")
    print("Base when updates are rare.")


if __name__ == "__main__":
    main()
