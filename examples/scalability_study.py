#!/usr/bin/env python3
"""Scalability study: regenerate the paper's headline figure from the API.

Runs the simulated evaluation for the AllUpdates workload on a compressed
replica axis and prints the Figure 4/5-style series plus the speedup summary
("at 15 replicas ... the Tashkent systems outperform Base by factors of five
and three in throughput").

Run with:  python examples/scalability_study.py          (takes ~1 minute)
           python examples/scalability_study.py --fast   (coarser, ~15 s)
"""

import sys

from repro import run_replica_sweep
from repro.analysis.report import render_figure
from repro.analysis.results import summarize_sweep
from repro.core.config import SystemKind, WorkloadName


def main() -> None:
    fast = "--fast" in sys.argv
    replica_counts = (1, 4, 15) if fast else (1, 2, 4, 8, 12, 15)
    measure_ms = 1000.0 if fast else 2000.0

    print("Running the AllUpdates replica sweep (shared IO channel)...")
    sweep = run_replica_sweep(
        WorkloadName.ALL_UPDATES,
        systems=(SystemKind.BASE, SystemKind.TASHKENT_MW, SystemKind.TASHKENT_API,
                 SystemKind.TASHKENT_API_NO_CERT),
        replica_counts=replica_counts,
        dedicated_io=False,
        warmup_ms=400.0,
        measure_ms=measure_ms,
    )

    print()
    print(render_figure(sweep, metric="throughput",
                        title="AllUpdates throughput vs number of replicas (cf. Figure 4)"))
    print()
    print(render_figure(sweep, metric="response",
                        title="AllUpdates response time vs number of replicas (cf. Figure 5)"))

    summary = summarize_sweep(sweep)
    print()
    print(f"At {summary.num_replicas} replicas:")
    print(f"  Base         : {summary.base_tps:8.1f} req/s")
    print(f"  Tashkent-API : {summary.tashkent_api_tps:8.1f} req/s "
          f"({summary.api_speedup:.1f}x Base; paper reports ~3x)")
    print(f"  Tashkent-MW  : {summary.tashkent_mw_tps:8.1f} req/s "
          f"({summary.mw_speedup:.1f}x Base; paper reports ~5x)")
    mw_point = sweep.curve(SystemKind.TASHKENT_MW)[-1]
    print(f"  Tashkent-MW certifier groups "
          f"{mw_point.result.writesets_per_fsync:.0f} writesets per fsync "
          f"(paper reports ~29)")


if __name__ == "__main__":
    main()
