#!/usr/bin/env python3
"""Fault tolerance walkthrough: crash and recover replicas and certifiers.

Demonstrates the recovery procedures of Section 7 of the paper on real
components:

1. a Tashkent-MW replica crashes after its synchronous writes were disabled —
   it restarts from its latest valid dump and replays remote writesets from
   the certifier's log, losing nothing;
2. a Base replica crashes — its own WAL recovers the durable prefix and the
   certifier log replay brings it up to date;
3. a certifier node crashes and recovers via state transfer through the
   Paxos-replicated certifier group, which keeps making progress as long as
   a majority is up.

Run with:  python examples/fault_tolerance.py
"""

from repro.consensus.group import ReplicatedCertifierGroup
from repro.core.certification import CertificationRequest
from repro.core.writeset import make_writeset
from repro.engine.checkpoint import CheckpointStore
from repro.engine.database import Database
from repro.engine.recovery import verify_same_state
from repro.middleware.certifier import CertifierService
from repro.recovery.certifier_recovery import recover_certifier_node
from repro.recovery.replica_recovery import (
    recover_base_replica,
    recover_tashkent_mw_replica,
    replay_writesets_from_certifier,
)
from repro.recovery.timings import RecoveryTimingModel


def certified_bank(updates: int = 30) -> CertifierService:
    """A certifier whose log records a stream of account updates."""
    certifier = CertifierService()
    for i in range(updates):
        certifier.certify(CertificationRequest(
            tx_start_version=i,
            writeset=make_writeset([("accounts", i % 10)]),
            replica_version=i,
        ))
    return certifier


def demo_tashkent_mw_recovery() -> None:
    print("1) Tashkent-MW replica crash and recovery (dump + writeset replay)")
    certifier = certified_bank(30)
    replica = Database("replica-0", synchronous_commit=False)
    replica.create_table("accounts", ["id"])
    replay_writesets_from_certifier(replica, certifier.log)

    store = CheckpointStore()
    store.add(replica.dump())
    print(f"   dump taken at version {replica.current_version}")

    # More global commits happen, then the replica crashes before another dump.
    for i in range(30, 40):
        certifier.certify(CertificationRequest(
            tx_start_version=i, writeset=make_writeset([("accounts", i % 10)]),
            replica_version=i))
    lost = replica.simulate_crash()
    print(f"   crash: {lost} unflushed WAL records discarded (durability was off)")

    report = recover_tashkent_mw_replica(store, certifier.log)
    healthy = Database("healthy", synchronous_commit=False)
    healthy.create_table("accounts", ["id"])
    replay_writesets_from_certifier(healthy, certifier.log)
    print(f"   recovered from dump at version {report.used_checkpoint_version}, "
          f"replayed {report.writesets_replayed} writesets, "
          f"final version {report.final_version}")
    print(f"   state matches a healthy replica: {verify_same_state(report.database, healthy)}\n")


def demo_base_recovery() -> None:
    print("2) Base / Tashkent-API replica crash and recovery (WAL redo + replay)")
    certifier = certified_bank(20)
    replica = Database("replica-1", synchronous_commit=True)
    replica.create_table("accounts", ["id"])
    for record in certifier.log.records_between(0, 12):
        replica.apply_writeset(record.writeset, version=record.commit_version)
    schemas = [t.schema for t in replica.tables.values()]
    replica.simulate_crash()
    report = recover_base_replica(replica.wal, schemas, certifier.log,
                                  database_name="replica-1")
    print(f"   WAL redo reached version {report.recovered_to_version}; "
          f"{report.writesets_replayed} writesets replayed from the certifier log; "
          f"final version {report.final_version}\n")


def demo_certifier_recovery() -> None:
    print("3) Certifier node crash, leader election and state transfer")
    group = ReplicatedCertifierGroup(3)
    for i in range(10):
        group.certify(CertificationRequest(
            tx_start_version=i, writeset=make_writeset([("accounts", i)]),
            replica_version=i))
    leader = group.leader_id
    group.crash_node(leader)
    group.elect_new_leader()
    print(f"   leader {leader} crashed; new leader is {group.leader_id}; "
          f"quorum: {group.has_quorum()}")
    for i in range(10, 15):
        group.certify(CertificationRequest(
            tx_start_version=i, writeset=make_writeset([("accounts", i)]),
            replica_version=i))
    report = recover_certifier_node(group, leader)
    print(f"   node {leader} recovered with {report.entries_transferred} log entries "
          f"transferred; logs consistent: {group.logs_consistent()}\n")


def main() -> None:
    demo_tashkent_mw_recovery()
    demo_base_recovery()
    demo_certifier_recovery()
    timings = RecoveryTimingModel().timings(downtime_hours=1.0)
    print("Section 9.6 recovery-time model (TPC-W sizes, 1 hour of downtime):")
    print(f"   Tashkent-MW: restore {timings.restore_seconds:.0f} s + replay "
          f"{timings.writeset_replay_seconds:.0f} s")
    print(f"   Base / Tashkent-API: WAL recovery {timings.wal_recovery_seconds:.0f} s + "
          f"replay {timings.writeset_replay_seconds:.0f} s")
    print(f"   certifier log transfer: {timings.certifier_transfer_seconds:.1f} s")


if __name__ == "__main__":
    main()
