#!/usr/bin/env python3
"""Routed sessions: the cluster scheduler as the front door.

The paper pins each client to one replica for life.  This example runs the
same 4-replica Tashkent-MW cluster in *routed* mode: every transaction asks
the cluster scheduler (``repro.balancer``) for a replica, and the choice of
routing policy decides how often a client trips over its own recent writes.

A replica only learns about a commit when the next certification response
or refresh reaches it, so a client that rewrites the same row back-to-back
*must* land on the replica that ran its previous write — anywhere else its
writeset intersects its own predecessor and certification aborts it.
Round-robin routing ignores that and pays aborts; conflict-aware routing
remembers which replica last wrote each item and keeps the rewrite home.

Run with:  python examples/routed_cluster.py
"""

from repro import build_tashkent_mw_system


def build_cluster():
    system = build_tashkent_mw_system(num_replicas=4)
    system.create_table("carts", ["id", "items"])
    session = system.session(0, client_name="loader")
    session.begin()
    for cart in range(8):
        session.insert("carts", cart, id=cart, items=0)
    assert session.commit().committed
    system.refresh_all()
    return system


def bursty_shopper(system, policy: str, rewrites: int = 6) -> None:
    """One client growing its cart ``rewrites`` times through routed sessions."""
    scheduler = system.scheduler(policy)
    session = system.routed_session(scheduler, client_name="shopper")
    replicas_used = []
    for step in range(rewrites):
        session.begin(items=[("carts", 0)])
        row = session.read("carts", 0)
        session.update("carts", 0, items=row["items"] + 1)
        outcome = session.commit()
        replicas_used.append(session.last_replica_index)
        print(f"  [{policy}] rewrite {step} on replica {session.last_replica_index}: "
              f"{'committed' if outcome.committed else 'aborted (' + outcome.abort_reason + ')'}")
    print(f"  [{policy}] commits={session.commits} aborts={session.aborts} "
          f"replicas used={sorted(set(replicas_used))}")


def main() -> None:
    print("Round-robin routing: every rewrite bounces to the next replica,")
    print("which has not yet applied the previous commit -> certification aborts")
    bursty_shopper(build_cluster(), "round-robin")

    print()
    print("Conflict-aware routing: item affinity keeps the rewrites on one")
    print("replica, so every one of them commits")
    bursty_shopper(build_cluster(), "conflict-aware")

    print()
    print("Admission control: each replica takes one transaction at a time here;")
    print("a third concurrent client is refused instead of queueing unboundedly")
    system = build_cluster()
    scheduler = system.scheduler("least-loaded", multiprogramming_limit=1)
    holders = []
    for i in range(len(system.replicas)):
        holder = system.routed_session(scheduler, client_name=f"holder-{i}")
        holder.begin()
        holders.append(holder)
    from repro.errors import AdmissionTimeoutError
    extra = system.routed_session(scheduler, client_name="extra")
    try:
        extra.begin()
    except AdmissionTimeoutError as exc:
        print(f"  admission refused: {exc}")
    for holder in holders:
        holder.abort()
    snapshot = scheduler.snapshot()
    print(f"  scheduler snapshot: policy={snapshot['policy']}, "
          f"in-flight={[r['in_flight'] for r in snapshot['replicas']]}")


if __name__ == "__main__":
    main()
