#!/usr/bin/env python3
"""Documentation checks: internal links resolve, runnable examples run.

Two passes over ``README.md`` and ``docs/*.md`` (standard library only, so
the CI docs job needs no installs):

1. **Link check** — every markdown link ``[text](target)`` with a relative
   target must point at an existing file or directory; fragments
   (``file.md#section`` or ``#section``) must match a heading's GitHub-style
   anchor in the target file.  External schemes (http/https/mailto) are
   skipped — CI should not fail on someone else's outage.
2. **Doctest check** — fenced code blocks whose info string is
   ``python doctest`` are executed with the standard :mod:`doctest` runner
   (with ``src`` on ``sys.path``).  Mark an example runnable only when its
   output is deterministic.

Exit status is non-zero on any failure, with one line per finding.

Run as:  PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

#: ``[text](target)`` — target captured up to the closing parenthesis.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_RE = re.compile(r"^```(.*)$")
EXTERNAL_SCHEMES = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def github_anchor(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, drop punctuation,
    spaces to hyphens (backticks and markdown emphasis stripped first)."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def strip_fenced_blocks(text: str) -> str:
    """Remove fenced code blocks so links/headings inside them are ignored."""
    out_lines, in_fence = [], False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            out_lines.append(line)
    return "\n".join(out_lines)


def anchors_of(path: Path) -> set[str]:
    anchors = set()
    for line in strip_fenced_blocks(path.read_text()).splitlines():
        match = HEADING_RE.match(line)
        if match:
            anchors.add(github_anchor(match.group(1)))
    return anchors


def check_links(files: list[Path]) -> list[str]:
    errors = []
    anchor_cache: dict[Path, set[str]] = {}
    for md_file in files:
        prose = strip_fenced_blocks(md_file.read_text())
        for target in LINK_RE.findall(prose):
            if target.startswith(EXTERNAL_SCHEMES):
                continue
            rel = md_file.relative_to(REPO_ROOT)
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = (md_file.parent / path_part).resolve()
                if not resolved.exists():
                    errors.append(f"{rel}: broken link -> {target}")
                    continue
            else:
                resolved = md_file
            if fragment:
                if resolved.suffix != ".md" or resolved.is_dir():
                    continue  # anchors only checked inside markdown
                if resolved not in anchor_cache:
                    anchor_cache[resolved] = anchors_of(resolved)
                if fragment.lower() not in anchor_cache[resolved]:
                    errors.append(f"{rel}: broken anchor -> {target}")
    return errors


def runnable_blocks(path: Path) -> list[tuple[int, str]]:
    """``(first_line_number, source)`` of every ``python doctest`` fence."""
    blocks, current, start_line = [], None, 0
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        fence = FENCE_RE.match(line.strip())
        if fence and current is None:
            info = fence.group(1).strip().lower()
            if info.startswith("python") and "doctest" in info:
                current, start_line = [], number + 1
        elif fence and current is not None:
            blocks.append((start_line, "\n".join(current) + "\n"))
            current = None
        elif current is not None:
            current.append(line)
    return blocks


def check_doctests(files: list[Path]) -> tuple[list[str], int]:
    errors, total = [], 0
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(optionflags=doctest.ELLIPSIS)
    for md_file in files:
        rel = md_file.relative_to(REPO_ROOT)
        for line_number, source in runnable_blocks(md_file):
            total += 1
            name = f"{rel}:{line_number}"
            try:
                test = parser.get_doctest(source, {}, name, str(rel), line_number)
            except ValueError as exc:
                errors.append(f"{name}: unparseable doctest block ({exc})")
                continue
            result = runner.run(test, clear_globs=True)
            if result.failed:
                errors.append(
                    f"{name}: {result.failed}/{result.attempted} example(s) failed"
                )
    return errors, total


def main() -> int:
    files = doc_files()
    if not files:
        print("check_docs: no documentation files found", file=sys.stderr)
        return 1
    link_errors = check_links(files)
    doctest_errors, doctests_run = check_doctests(files)
    for error in link_errors + doctest_errors:
        print(f"FAIL {error}")
    if link_errors or doctest_errors:
        print(f"check_docs: {len(link_errors)} link / {len(doctest_errors)} "
              f"doctest failure(s) across {len(files)} file(s)")
        return 1
    print(f"check_docs: OK — {len(files)} file(s), links resolve, "
          f"{doctests_run} runnable block(s) passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
