#!/usr/bin/env python3
"""Benchmark regression gate: fresh BENCH_*.json vs the committed files.

The repository commits the benchmark result files (``BENCH_*.json`` at the
repo root) alongside the code that produced them.  CI re-emits them and this
script fails the build when a *guarded metric* regressed by more than the
tolerance (default 25%).

Only metrics that are stable across machines are guarded:

* **deterministic** metrics come from the discrete-event simulation and must
  reproduce almost exactly on any host (tolerance still applies, so a
  deliberate re-calibration inside the band does not need a baseline bump);
* **ratio** metrics (speedups, fsyncs-per-writeset) divide out the host's
  absolute speed, so wall-clock micro-benchmarks are compared by their
  shape, not by the raw ops/sec of whatever runner CI landed on.

Each guard names the file, how to key rows, the metric field, and the good
direction (``higher``/``lower``).  A fresh row missing a committed
counterpart fails — silently dropping a measured point is itself a
regression.  Intentional performance changes are shipped by regenerating the
committed file in the same PR (run the benchmark, commit the JSON).

Run as:  python tools/check_bench_regression.py [--tolerance 0.25]
(standard library only; benchmarks must have been run first so the fresh
files exist — CI runs them into the working tree, then compares against
``git show HEAD:<file>``.)
"""

from __future__ import annotations

import argparse
import json
import subprocess
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


@dataclass(frozen=True)
class Guard:
    """One guarded metric inside one benchmark file."""

    file: str
    #: Dotted path to the list of result rows (e.g. "results" or "scaling").
    rows_key: str
    #: Fields identifying a row (the join key between fresh and committed).
    key_fields: tuple[str, ...]
    #: The numeric field to compare.
    metric: str
    #: "higher" = larger is better (throughput); "lower" = smaller is better.
    direction: str
    #: Per-guard tolerance override.  Deterministic simulated metrics use the
    #: strict default; wall-clock ratios carry host-speed noise (their op
    #: counts per window shift with the runner), so they only guard against
    #: catastrophic regressions — e.g. losing the index or the batching.
    tolerance: float | None = None
    #: Absolute bound on the fresh value, independent of the committed
    #: baseline: the minimum for ``higher``-is-better metrics, the maximum
    #: for ``lower``.  Encodes acceptance criteria (e.g. "group
    #: certification must stay ≥3x the serialized baseline") that must hold
    #: even when the baseline itself is re-calibrated.
    absolute: float | None = None
    #: When set, the guard applies only to the row with this exact key
    #: (matching ``key_fields``) instead of every row in the file.
    only_key: tuple | None = None


GUARDS: tuple[Guard, ...] = (
    # Deterministic simulated throughput: the sharding win itself.
    Guard("BENCH_certifier_shards.json", "results",
          ("shards", "cross_ratio"), "certifications_per_sec", "higher"),
    Guard("BENCH_certifier_shards.json", "results",
          ("shards", "cross_ratio"), "speedup_vs_single", "higher"),
    # Deterministic simulated availability: throughput with and without a
    # shard-leader outage, and how fast the pipeline drains on recovery
    # (recovery_lag_ms only exists in the crash-scenario row; the steady row
    # is skipped for that metric).
    Guard("BENCH_recovery.json", "results",
          ("scenario",), "certifications_per_sec", "higher"),
    Guard("BENCH_recovery.json", "results",
          ("scenario",), "recovery_lag_ms", "lower"),
    # Deterministic modeled recovery table (Section 9.6 calibration): the
    # classic whole-log transfer and its snapshot-plus-suffix decomposition.
    Guard("BENCH_recovery_times.json", "results",
          ("downtime_h",), "certifier_transfer_s", "lower"),
    Guard("BENCH_recovery_times.json", "results",
          ("downtime_h",), "certifier_bootstrap_s", "lower"),
    Guard("BENCH_recovery_times.json", "results",
          ("downtime_h",), "writeset_replay_s", "lower"),
    # Deterministic functional bootstrap: state-transfer time must keep
    # scaling with retained state (suffix + snapshot), never with the full
    # history, and compaction must keep the per-node log bounded.
    Guard("BENCH_bootstrap.json", "results",
          ("history", "headroom"), "modeled_bootstrap_ms", "lower"),
    Guard("BENCH_bootstrap.json", "results",
          ("history", "headroom"), "failover_window_ms", "lower"),
    Guard("BENCH_bootstrap.json", "results",
          ("history", "headroom"), "max_node_log_entries", "lower"),
    # Wall-clock micro-benchmarks: guard the machine-independent ratios,
    # loosely (indexed-vs-scan stays >10x even at 60% tolerance; a lost
    # index is a ~100x collapse and still fails loudly).
    Guard("BENCH_certifier.json", "scaling",
          ("log_length", "ws_size"), "speedup", "higher", tolerance=0.6),
    Guard("BENCH_propagation.json", "results",
          ("policy", "replicas"), "fsyncs_per_writeset", "lower"),
    Guard("BENCH_propagation.json", "results",
          ("policy", "replicas"), "mean_batch_size", "higher", tolerance=0.6),
    # MVCC vacuum: the structure metrics are deterministic functions of the
    # benchmark axes (chain length and retained rows after maintenance must
    # not creep up); the scan and install speedups are wall-clock ratios,
    # guarded loosely — losing the vacuum or the O(1) install layout is an
    # order-of-magnitude collapse and still fails at 60%.
    Guard("BENCH_mvcc_vacuum.json", "sustained",
          ("history",), "max_chain_on", "lower"),
    Guard("BENCH_mvcc_vacuum.json", "sustained",
          ("history",), "retained_rows_on", "lower"),
    Guard("BENCH_mvcc_vacuum.json", "sustained",
          ("history",), "read_speedup", "higher", tolerance=0.6),
    Guard("BENCH_mvcc_vacuum.json", "layout",
          ("chain_length",), "install_speedup", "higher", tolerance=0.6),
    # Live multi-process backend: pure wall-clock on real subprocesses and
    # sockets, so the guards are the loosest of all — they exist to catch an
    # order-of-magnitude collapse (a lost batch path, per-call reconnects, a
    # sleep on the commit hot path), not runner-speed drift.
    Guard("BENCH_live.json", "results",
          ("metric",), "value", "higher", tolerance=0.9),
    # Live sweep: the group-certification acceptance point.  The speedup and
    # fsync ratios divide out runner speed (both modes run on the same host
    # under the same emulated-disk floor), so they carry absolute bounds:
    # batched must stay ≥3x the single-in-flight baseline at 16 clients, and
    # more than one committed transaction must share each WAL fsync.  The
    # raw certs/sec rows get only the loosest collapse guard.
    Guard("BENCH_live_sweep.json", "summary",
          ("metric",), "value", "higher", tolerance=0.5, absolute=3.0,
          only_key=("speedup_batched_vs_serialized_16_clients",)),
    Guard("BENCH_live_sweep.json", "summary",
          ("metric",), "value", "lower", tolerance=0.5, absolute=0.99,
          only_key=("batched_fsyncs_per_commit_16_clients",)),
    Guard("BENCH_live_sweep.json", "summary",
          ("metric",), "value", "higher", tolerance=0.5,
          only_key=("speedup_batched_vs_serialized_4_clients",)),
    # Scheduler failover: kill -9 the primary, promote the standby, commit
    # again.  Wall-clock on subprocess choreography, so the relative guard
    # is the loosest; the absolute ceiling is the acceptance criterion (a
    # sub-5s window covers WAL rebuild + device swap + client re-dial even
    # on a slow runner — regressions that serialize on a retry backoff or
    # re-read full WALs per shard blow well past it).
    Guard("BENCH_live_sweep.json", "summary",
          ("metric",), "value", "lower", tolerance=0.9, absolute=5000.0,
          only_key=("live_failover_window_ms",)),
    Guard("BENCH_live_sweep.json", "results",
          ("mode", "clients", "shards", "window_ms", "batch_max",
           "fsync_floor_ms"), "certs_per_sec", "higher", tolerance=0.9),
    Guard("BENCH_live_sweep.json", "results",
          ("mode", "clients", "shards", "window_ms", "batch_max",
           "fsync_floor_ms"), "fsyncs_per_commit", "lower", tolerance=0.5),
)


def load_fresh(name: str) -> dict | None:
    path = REPO_ROOT / name
    if not path.exists():
        return None
    return json.loads(path.read_text())


def load_committed(name: str) -> dict | None:
    """The committed baseline, read from git so the working tree's freshly
    emitted file cannot shadow it."""
    result = subprocess.run(
        ["git", "show", f"HEAD:{name}"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    if result.returncode != 0:
        return None
    return json.loads(result.stdout)


def rows_by_key(payload: dict, guard: Guard) -> dict[tuple, dict]:
    rows = payload.get(guard.rows_key, [])
    keyed = {tuple(row[k] for k in guard.key_fields): row for row in rows}
    if guard.only_key is not None:
        keyed = {key: row for key, row in keyed.items() if key == guard.only_key}
    return keyed


def check_absolute(guard: Guard, fresh_rows: dict[tuple, dict]) -> list[str]:
    """Absolute acceptance bounds, independent of any committed baseline."""
    if guard.absolute is None:
        return []
    errors: list[str] = []
    if guard.only_key is not None and guard.only_key not in fresh_rows:
        errors.append(
            f"{guard.file}: row {guard.only_key} carries an absolute bound "
            f"but is missing from the fresh run"
        )
    for key, row in fresh_rows.items():
        value = row.get(guard.metric)
        if value is None:
            continue
        value = float(value)
        if guard.direction == "higher":
            violated = value < guard.absolute
            bound = f">= {guard.absolute:g}"
        else:
            violated = value > guard.absolute
            bound = f"<= {guard.absolute:g}"
        if violated:
            errors.append(
                f"{guard.file}: {guard.metric}{key} = {value:g} violates the "
                f"absolute acceptance bound {bound}"
            )
    return errors


def check_guard(guard: Guard, default_tolerance: float) -> list[str]:
    tolerance = guard.tolerance if guard.tolerance is not None else default_tolerance
    fresh_payload = load_fresh(guard.file)
    committed_payload = load_committed(guard.file)
    if fresh_payload is None:
        return [f"{guard.file}: fresh file missing (benchmarks not run?)"]
    fresh_rows = rows_by_key(fresh_payload, guard)
    errors = check_absolute(guard, fresh_rows)
    if committed_payload is None:
        # A brand-new benchmark file has no baseline yet; it becomes one at
        # the commit that introduces it (absolute bounds still apply above).
        return errors
    for key, committed_row in rows_by_key(committed_payload, guard).items():
        if committed_row.get(guard.metric) is None:
            # Conditionally-present metrics (e.g. recovery_lag_ms exists only
            # in the crash-scenario row, and is null when unmeasurable) are
            # not guarded for rows whose baseline lacks them.
            continue
        fresh_row = fresh_rows.get(key)
        if fresh_row is None:
            errors.append(
                f"{guard.file}: row {key} present in the committed baseline "
                f"but missing from the fresh run"
            )
            continue
        if fresh_row.get(guard.metric) is None:
            # A fresh row dropping (or nulling) a guarded metric its baseline
            # has is a regression, reported cleanly rather than as a KeyError.
            errors.append(
                f"{guard.file}: metric {guard.metric!r} of row {key} present "
                f"in the committed baseline but missing from the fresh run"
            )
            continue
        baseline = float(committed_row[guard.metric])
        fresh = float(fresh_row[guard.metric])
        if baseline == 0:
            continue
        if guard.direction == "higher":
            regressed = fresh < baseline * (1.0 - tolerance)
        else:
            regressed = fresh > baseline * (1.0 + tolerance)
        if regressed:
            errors.append(
                f"{guard.file}: {guard.metric}{key} regressed "
                f"{baseline:g} -> {fresh:g} "
                f"(>{tolerance:.0%} in the '{guard.direction}-is-better' direction)"
            )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative regression (default 0.25)")
    args = parser.parse_args(argv)

    errors: list[str] = []
    checked = 0
    for guard in GUARDS:
        guard_errors = check_guard(guard, args.tolerance)
        errors.extend(guard_errors)
        checked += 1
    for error in errors:
        print(f"FAIL {error}")
    if errors:
        print(f"check_bench_regression: {len(errors)} regression(s) across "
              f"{checked} guarded metric(s)")
        return 1
    print(f"check_bench_regression: OK — {checked} guarded metric(s) within "
          f"{args.tolerance:.0%} of the committed baselines")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
